// Package quality implements sensor data quality control — the first of
// the paper's §VIII future directions ("we can explore sensor data
// quality control schemes in blockchain-based systems").
//
// Gateways run a Validator over plaintext sensor readings at admission:
// range plausibility per sensor class, bounded rate-of-change per
// device, and monotone sequence numbers. Violations are surfaced so the
// node layer can punish persistent offenders through the same credit
// mechanism that handles lazy tips and double spending — extending the
// paper's behaviour set with "bad data" as a third misbehaviour class.
//
// Readings use the device package's key=value line format
// (`sensor=temperature;seq=3;t=...;value=21.5`); unparseable plaintext
// is itself a violation. Encrypted payloads are skipped: the gateway
// cannot (and must not) inspect them — quality control for sensitive
// streams belongs to the key holder.
package quality

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/b-iot/biot/internal/identity"
)

// ViolationKind classifies quality violations.
type ViolationKind int

const (
	// ViolationMalformed is an unparseable plaintext reading.
	ViolationMalformed ViolationKind = iota + 1
	// ViolationRange is a value outside the sensor class's plausible
	// band.
	ViolationRange
	// ViolationJump is a rate-of-change beyond the configured bound.
	ViolationJump
	// ViolationSequence is a non-increasing per-device sequence number
	// (stale or replayed reading).
	ViolationSequence
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case ViolationMalformed:
		return "malformed"
	case ViolationRange:
		return "out-of-range"
	case ViolationJump:
		return "implausible-jump"
	case ViolationSequence:
		return "stale-sequence"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// Violation describes one detected quality problem.
type Violation struct {
	Kind   ViolationKind
	Detail string
}

// Error renders the violation as an error message.
func (v Violation) Error() string {
	return fmt.Sprintf("quality %s: %s", v.Kind, v.Detail)
}

// Band is a plausible value range for a sensor class, plus the largest
// believable step between consecutive readings from one device.
type Band struct {
	Min     float64
	Max     float64
	MaxStep float64 // 0 disables the rate-of-change check
}

// DefaultBands returns plausibility bands for the built-in sensor
// classes of the smart-factory case study.
func DefaultBands() map[string]Band {
	return map[string]Band{
		"temperature": {Min: -40, Max: 125, MaxStep: 10},
		"humidity":    {Min: 0, Max: 100, MaxStep: 20},
		"vibration":   {Min: 0, Max: 50, MaxStep: 25},
		"power":       {Min: 0, Max: 10_000, MaxStep: 5_000},
	}
}

// Reading is a parsed plaintext sensor line.
type Reading struct {
	Sensor string
	Seq    uint64
	Value  float64
	HasVal bool
}

// ErrUnparseable reports plaintext that is not a key=value reading.
var ErrUnparseable = errors.New("unparseable sensor reading")

// ParseReading parses the device package's key=value line format.
func ParseReading(blob []byte) (Reading, error) {
	var r Reading
	s := string(blob)
	if !strings.Contains(s, "=") {
		return r, fmt.Errorf("%w: no key=value pairs", ErrUnparseable)
	}
	for _, field := range strings.Split(s, ";") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		switch key {
		case "sensor":
			r.Sensor = val
		case "seq":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return r, fmt.Errorf("%w: bad seq %q", ErrUnparseable, val)
			}
			r.Seq = n
		case "value":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return r, fmt.Errorf("%w: bad value %q", ErrUnparseable, val)
			}
			r.Value = f
			r.HasVal = true
		}
	}
	return r, nil
}

// Validator checks readings against bands and per-device history. Safe
// for concurrent use.
type Validator struct {
	bands map[string]Band

	mu    sync.Mutex
	state map[identity.Address]*deviceState
}

type deviceState struct {
	lastSeq   uint64
	hasSeq    bool
	lastValue float64
	hasValue  bool
	sensor    string
}

// NewValidator builds a validator over the given bands (nil selects
// DefaultBands).
func NewValidator(bands map[string]Band) *Validator {
	if bands == nil {
		bands = DefaultBands()
	}
	copied := make(map[string]Band, len(bands))
	for k, v := range bands {
		copied[k] = v
	}
	return &Validator{
		bands: copied,
		state: make(map[identity.Address]*deviceState),
	}
}

// Check validates one plaintext reading from addr, updating per-device
// history. It returns every violation found (empty for a clean
// reading). Unknown sensor classes pass range checks (no band ⇒ no
// opinion) but still get sequence tracking.
func (v *Validator) Check(addr identity.Address, blob []byte) []Violation {
	reading, err := ParseReading(blob)
	if err != nil {
		return []Violation{{Kind: ViolationMalformed, Detail: err.Error()}}
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	st, ok := v.state[addr]
	if !ok {
		st = &deviceState{}
		v.state[addr] = st
	}

	var out []Violation

	// Sequence monotonicity (replayed/stale readings).
	if st.hasSeq && reading.Seq <= st.lastSeq {
		out = append(out, Violation{
			Kind:   ViolationSequence,
			Detail: fmt.Sprintf("seq %d not after %d", reading.Seq, st.lastSeq),
		})
	} else {
		st.lastSeq = reading.Seq
		st.hasSeq = true
	}

	band, hasBand := v.bands[reading.Sensor]
	if reading.HasVal && hasBand {
		if reading.Value < band.Min || reading.Value > band.Max {
			out = append(out, Violation{
				Kind: ViolationRange,
				Detail: fmt.Sprintf("%s value %g outside [%g, %g]",
					reading.Sensor, reading.Value, band.Min, band.Max),
			})
		} else {
			// Rate of change only against in-band history of the same
			// sensor class.
			if st.hasValue && st.sensor == reading.Sensor && band.MaxStep > 0 {
				step := reading.Value - st.lastValue
				if step < 0 {
					step = -step
				}
				if step > band.MaxStep {
					out = append(out, Violation{
						Kind: ViolationJump,
						Detail: fmt.Sprintf("%s stepped %g > %g",
							reading.Sensor, step, band.MaxStep),
					})
				}
			}
			st.lastValue = reading.Value
			st.hasValue = true
			st.sensor = reading.Sensor
		}
	}
	return out
}

// Forget drops the history for a device (deauthorization, key change).
func (v *Validator) Forget(addr identity.Address) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.state, addr)
}

// Devices returns how many devices have tracked history.
func (v *Validator) Devices() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.state)
}
