package quality

import (
	"fmt"
	"strings"
	"testing"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

var devA = identity.Address(hashutil.Sum([]byte("dev-a")))
var devB = identity.Address(hashutil.Sum([]byte("dev-b")))

func reading(sensor string, seq int, value float64) []byte {
	return []byte(fmt.Sprintf("sensor=%s;seq=%d;t=123;value=%.3f", sensor, seq, value))
}

func TestParseReading(t *testing.T) {
	r, err := ParseReading(reading("temperature", 3, 21.5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Sensor != "temperature" || r.Seq != 3 || !r.HasVal || r.Value != 21.5 {
		t.Errorf("parsed = %+v", r)
	}
}

func TestParseReadingErrors(t *testing.T) {
	bad := [][]byte{
		[]byte("no pairs here"),
		[]byte("sensor=x;seq=abc"),
		[]byte("sensor=x;seq=1;value=NaNope"),
	}
	for _, blob := range bad {
		if _, err := ParseReading(blob); err == nil {
			t.Errorf("parsed %q", blob)
		}
	}
}

func TestCleanStreamNoViolations(t *testing.T) {
	v := NewValidator(nil)
	for i := 1; i <= 20; i++ {
		if got := v.Check(devA, reading("temperature", i, 20+float64(i%3))); len(got) != 0 {
			t.Fatalf("clean reading %d flagged: %v", i, got)
		}
	}
}

func TestRangeViolation(t *testing.T) {
	v := NewValidator(nil)
	got := v.Check(devA, reading("temperature", 1, 900))
	if len(got) != 1 || got[0].Kind != ViolationRange {
		t.Errorf("violations = %v", got)
	}
	// Below min too.
	got = v.Check(devA, reading("temperature", 2, -80))
	if len(got) != 1 || got[0].Kind != ViolationRange {
		t.Errorf("violations = %v", got)
	}
}

func TestJumpViolation(t *testing.T) {
	v := NewValidator(nil)
	if got := v.Check(devA, reading("temperature", 1, 20)); len(got) != 0 {
		t.Fatalf("first reading flagged: %v", got)
	}
	got := v.Check(devA, reading("temperature", 2, 80)) // Δ60 > MaxStep 10
	if len(got) != 1 || got[0].Kind != ViolationJump {
		t.Errorf("violations = %v", got)
	}
}

func TestSequenceViolation(t *testing.T) {
	v := NewValidator(nil)
	if got := v.Check(devA, reading("temperature", 5, 20)); len(got) != 0 {
		t.Fatal("clean reading flagged")
	}
	got := v.Check(devA, reading("temperature", 5, 20.1)) // replay
	if len(got) != 1 || got[0].Kind != ViolationSequence {
		t.Errorf("violations = %v", got)
	}
	got = v.Check(devA, reading("temperature", 4, 20.2)) // stale
	if len(got) != 1 || got[0].Kind != ViolationSequence {
		t.Errorf("violations = %v", got)
	}
}

func TestMalformedViolation(t *testing.T) {
	v := NewValidator(nil)
	got := v.Check(devA, []byte("garbage blob"))
	if len(got) != 1 || got[0].Kind != ViolationMalformed {
		t.Errorf("violations = %v", got)
	}
}

func TestDevicesTrackedIndependently(t *testing.T) {
	v := NewValidator(nil)
	v.Check(devA, reading("temperature", 10, 20))
	// devB starting at seq 1 is fine even though devA is at 10.
	if got := v.Check(devB, reading("temperature", 1, 20)); len(got) != 0 {
		t.Errorf("cross-device state leak: %v", got)
	}
	if v.Devices() != 2 {
		t.Errorf("devices = %d", v.Devices())
	}
}

func TestUnknownSensorPassesRange(t *testing.T) {
	v := NewValidator(nil)
	if got := v.Check(devA, reading("co2", 1, 123456)); len(got) != 0 {
		t.Errorf("unknown sensor flagged: %v", got)
	}
	// But sequence still enforced.
	if got := v.Check(devA, reading("co2", 1, 1)); len(got) != 1 {
		t.Errorf("unknown sensor seq not enforced: %v", got)
	}
}

func TestForget(t *testing.T) {
	v := NewValidator(nil)
	v.Check(devA, reading("temperature", 9, 20))
	v.Forget(devA)
	if got := v.Check(devA, reading("temperature", 1, 20)); len(got) != 0 {
		t.Errorf("forgotten device still tracked: %v", got)
	}
}

func TestCustomBands(t *testing.T) {
	v := NewValidator(map[string]Band{"flow": {Min: 0, Max: 10, MaxStep: 2}})
	if got := v.Check(devA, reading("flow", 1, 5)); len(got) != 0 {
		t.Errorf("in-band flagged: %v", got)
	}
	if got := v.Check(devA, reading("flow", 2, 11)); len(got) != 1 || got[0].Kind != ViolationRange {
		t.Errorf("out-of-band not flagged: %v", got)
	}
	// Default band for temperature is gone under custom bands.
	if got := v.Check(devA, reading("temperature", 3, 999)); len(got) != 0 {
		t.Errorf("custom validator kept default bands: %v", got)
	}
}

func TestJumpNotComparedAcrossSensorSwitch(t *testing.T) {
	v := NewValidator(nil)
	v.Check(devA, reading("temperature", 1, 20))
	// Device repurposed to humidity: 60 is plausible even though the
	// numeric step from 20 exceeds temperature's MaxStep.
	if got := v.Check(devA, reading("humidity", 2, 60)); len(got) != 0 {
		t.Errorf("cross-sensor jump flagged: %v", got)
	}
}

func TestViolationStrings(t *testing.T) {
	for _, k := range []ViolationKind{ViolationMalformed, ViolationRange, ViolationJump, ViolationSequence} {
		if strings.HasPrefix(k.String(), "violation(") {
			t.Errorf("%d missing name", k)
		}
	}
	v := Violation{Kind: ViolationRange, Detail: "x"}
	if !strings.Contains(v.Error(), "out-of-range") {
		t.Error("violation error message wrong")
	}
}
