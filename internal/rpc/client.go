package rpc

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Client talks to a full node's RPC API and implements node.Gateway, so
// a LightNode runs against a remote gateway exactly as it does against
// an in-process one.
type Client struct {
	base        string
	http        *http.Client
	callTimeout time.Duration
	maxAttempts int
	baseBackoff time.Duration
	jitter      func(time.Duration) time.Duration
}

var _ node.Gateway = (*Client)(nil)

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient replaces the underlying *http.Client.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithCallTimeout bounds each call that arrives without its own
// deadline. Callers passing a context that already has one keep it.
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.callTimeout = d }
}

// WithRetry enables retries for idempotent GETs: up to maxAttempts
// total tries separated by jittered exponential backoff starting at
// baseBackoff, retrying only transient failures — network errors and
// 502/503/504 (a supervised gateway answers 503 mid-restart; retrying
// rides out the watchdog). Submissions (POST) are NEVER auto-retried:
// a submit whose response was lost may have been admitted, and a
// re-submission would either burn a duplicate-admission error or, for
// re-mined payloads, double-spend the reading.
func WithRetry(maxAttempts int, baseBackoff time.Duration) ClientOption {
	return func(c *Client) {
		c.maxAttempts = maxAttempts
		c.baseBackoff = baseBackoff
	}
}

// NewClient creates a client for the node at baseURL
// (e.g. "http://127.0.0.1:14265").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base: baseURL,
		http: &http.Client{Timeout: 30 * time.Second},
		jitter: func(d time.Duration) time.Duration {
			if d <= 0 {
				return 0
			}
			return time.Duration(rand.Int63n(int64(d)))
		},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx response from the node.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("rpc status %d: %s", e.Status, e.Message)
}

// callCtx applies the configured default timeout to a context that has
// no deadline of its own.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.callTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.callTimeout)
}

// transient reports whether a GET failure is worth retrying: a network
// error (no response at all) or a gateway-down status. Application
// errors — 4xx, 500 — are deterministic and retried never.
func transient(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// No structured status: the request never completed (dial refused,
	// connection reset, EOF mid-body).
	return true
}

// get runs one idempotent GET with the client's retry policy.
func (c *Client) get(ctx context.Context, path string, out any) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	attempts := c.maxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			backoff := c.baseBackoff << (attempt - 1)
			backoff += c.jitter(backoff / 2)
			select {
			case <-ctx.Done():
				return fmt.Errorf("rpc GET %s: %w (last error: %w)", path, ctx.Err(), lastErr)
			case <-time.After(backoff):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return fmt.Errorf("build rpc GET %s: %w", path, err)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("rpc GET %s: %w", path, err)
			if ctx.Err() != nil {
				return lastErr // deadline consumed: retrying cannot help
			}
			continue
		}
		err = func() error {
			defer resp.Body.Close()
			return decodeResponse(resp, out)
		}()
		if err == nil || !transient(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

func decodeResponse(resp *http.Response, out any) error {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("read rpc response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		msg := string(body)
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return mapAPIError(&APIError{Status: resp.StatusCode, Message: msg})
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("decode rpc response: %w", err)
	}
	return nil
}

// mapAPIError wraps well-known statuses with the node-layer sentinel
// errors so light-node retry logic works across the wire.
func mapAPIError(apiErr *APIError) error {
	switch apiErr.Status {
	case http.StatusForbidden:
		return fmt.Errorf("%w: %w", node.ErrUnauthorizedDevice, apiErr)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %w", node.ErrRateLimited, apiErr)
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %w", node.ErrWrongDifficulty, apiErr)
	case http.StatusConflict:
		return fmt.Errorf("%w: %w", tangle.ErrDuplicate, apiErr)
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w: %w", tangle.ErrUnknownParent, apiErr)
	default:
		return apiErr
	}
}

// Info fetches node information.
func (c *Client) Info(ctx context.Context) (InfoResponse, error) {
	var out InfoResponse
	err := c.get(ctx, "/api/v1/info", &out)
	return out, err
}

// Health fetches the /healthz document. The call succeeds (with the
// decoded body) for both 200 and 503 — a health prober wants the
// degraded document, not an error.
func (c *Client) Health(ctx context.Context) (node.Health, error) {
	var out node.Health
	err := c.get(ctx, "/healthz", &out)
	if err == nil {
		return out, nil
	}
	// A 503 healthz still carries the full Health document as its body,
	// which decodeResponse preserved as the error message.
	var apiErr *APIError
	if errors.As(err, &apiErr) &&
		json.Unmarshal([]byte(apiErr.Message), &out) == nil && out.State != "" {
		return out, nil
	}
	return node.Health{}, err
}

// Ready fetches /readyz and reports whether the node accepts traffic.
func (c *Client) Ready(ctx context.Context) bool {
	return c.get(ctx, "/readyz", nil) == nil
}

// Credit fetches the credit breakdown for an address.
func (c *Client) Credit(ctx context.Context, addr identity.Address) (CreditResponse, error) {
	var out CreditResponse
	err := c.get(ctx, "/api/v1/credit?address="+addr.Hex(), &out)
	return out, err
}

// Events fetches the recorded malicious events for an address.
func (c *Client) Events(ctx context.Context, addr identity.Address) (EventsResponse, error) {
	var out EventsResponse
	err := c.get(ctx, "/api/v1/events?address="+addr.Hex(), &out)
	return out, err
}

// TipsForApproval implements node.Gateway.
func (c *Client) TipsForApproval() (hashutil.Hash, hashutil.Hash, error) {
	return c.TipsForApprovalCtx(context.Background())
}

// TipsForApprovalCtx is TipsForApproval with a caller deadline.
func (c *Client) TipsForApprovalCtx(ctx context.Context) (hashutil.Hash, hashutil.Hash, error) {
	var out TipsResponse
	if err := c.get(ctx, "/api/v1/tips", &out); err != nil {
		return hashutil.Zero, hashutil.Zero, err
	}
	trunk, err := hashutil.FromHex(out.Trunk)
	if err != nil {
		return hashutil.Zero, hashutil.Zero, fmt.Errorf("parse trunk: %w", err)
	}
	branch, err := hashutil.FromHex(out.Branch)
	if err != nil {
		return hashutil.Zero, hashutil.Zero, fmt.Errorf("parse branch: %w", err)
	}
	return trunk, branch, nil
}

// DifficultyFor implements node.Gateway. On RPC failure it returns 0,
// an out-of-range difficulty that makes the subsequent PoW call fail
// fast instead of mining against a guessed target.
func (c *Client) DifficultyFor(addr identity.Address) int {
	d, err := c.DifficultyForCtx(context.Background(), addr)
	if err != nil {
		return 0
	}
	return d
}

// DifficultyForCtx is DifficultyFor with a caller deadline and an
// explicit error instead of the Gateway interface's 0 sentinel.
func (c *Client) DifficultyForCtx(ctx context.Context, addr identity.Address) (int, error) {
	var out DifficultyResponse
	if err := c.get(ctx, "/api/v1/difficulty?address="+addr.Hex(), &out); err != nil {
		return 0, err
	}
	return out.Difficulty, nil
}

// GetTransaction implements node.Gateway.
func (c *Client) GetTransaction(id hashutil.Hash) (*txn.Transaction, error) {
	return c.GetTransactionCtx(context.Background(), id)
}

// GetTransactionCtx is GetTransaction with a caller deadline.
func (c *Client) GetTransactionCtx(ctx context.Context, id hashutil.Hash) (*txn.Transaction, error) {
	var out TxResponse
	if err := c.get(ctx, "/api/v1/transactions/"+id.Hex(), &out); err != nil {
		return nil, err
	}
	raw, err := base64.StdEncoding.DecodeString(out.Raw)
	if err != nil {
		return nil, fmt.Errorf("decode transaction: %w", err)
	}
	return txn.Decode(raw)
}

// TransactionsByKind implements node.Gateway.
func (c *Client) TransactionsByKind(kind txn.Kind, offset int) ([]*txn.Transaction, error) {
	return c.TransactionsByKindCtx(context.Background(), kind, offset)
}

// TransactionsByKindCtx is TransactionsByKind with a caller deadline.
func (c *Client) TransactionsByKindCtx(ctx context.Context, kind txn.Kind, offset int) ([]*txn.Transaction, error) {
	q := url.Values{}
	q.Set("kind", strconv.Itoa(int(kind)))
	q.Set("offset", strconv.Itoa(offset))
	var out TxPageResponse
	if err := c.get(ctx, "/api/v1/transactions?"+q.Encode(), &out); err != nil {
		return nil, err
	}
	txs := make([]*txn.Transaction, 0, len(out.Raw))
	for _, b64 := range out.Raw {
		raw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("decode transaction page: %w", err)
		}
		t, err := txn.Decode(raw)
		if err != nil {
			return nil, err
		}
		txs = append(txs, t)
	}
	return txs, nil
}

// Submit implements node.Gateway. Submissions are sent exactly once —
// WithRetry never applies here (see its doc) — but they do honour the
// call timeout and the caller's context.
func (c *Client) Submit(ctx context.Context, t *txn.Transaction) (tangle.Info, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	body, err := json.Marshal(SubmitRequest{
		Raw: base64.StdEncoding.EncodeToString(t.Encode()),
	})
	if err != nil {
		return tangle.Info{}, fmt.Errorf("encode submit request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/api/v1/transactions", bytes.NewReader(body))
	if err != nil {
		return tangle.Info{}, fmt.Errorf("build submit request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return tangle.Info{}, fmt.Errorf("rpc POST transactions: %w", err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if err := decodeResponse(resp, &out); err != nil {
		return tangle.Info{}, err
	}
	id, err := hashutil.FromHex(out.ID)
	if err != nil {
		return tangle.Info{}, fmt.Errorf("parse submitted id: %w", err)
	}
	return tangle.Info{
		ID:               id,
		Sender:           t.Sender(),
		Kind:             t.Kind,
		Status:           parseStatus(out.Status),
		CumulativeWeight: out.CumulativeWeight,
	}, nil
}

func parseStatus(s string) tangle.Status {
	switch s {
	case "confirmed":
		return tangle.StatusConfirmed
	case "rejected":
		return tangle.StatusRejected
	default:
		return tangle.StatusPending
	}
}

// ErrBadBaseURL reports a malformed base URL at construction time.
var ErrBadBaseURL = errors.New("malformed rpc base url")
