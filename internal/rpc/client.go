package rpc

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Client talks to a full node's RPC API and implements node.Gateway, so
// a LightNode runs against a remote gateway exactly as it does against
// an in-process one.
type Client struct {
	base string
	http *http.Client
}

var _ node.Gateway = (*Client)(nil)

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient replaces the underlying *http.Client.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// NewClient creates a client for the node at baseURL
// (e.g. "http://127.0.0.1:14265").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base: baseURL,
		http: &http.Client{Timeout: 30 * time.Second},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx response from the node.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("rpc status %d: %s", e.Status, e.Message)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("rpc GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("read rpc response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		msg := string(body)
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return mapAPIError(&APIError{Status: resp.StatusCode, Message: msg})
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("decode rpc response: %w", err)
	}
	return nil
}

// mapAPIError wraps well-known statuses with the node-layer sentinel
// errors so light-node retry logic works across the wire.
func mapAPIError(apiErr *APIError) error {
	switch apiErr.Status {
	case http.StatusForbidden:
		return fmt.Errorf("%w: %w", node.ErrUnauthorizedDevice, apiErr)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %w", node.ErrRateLimited, apiErr)
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %w", node.ErrWrongDifficulty, apiErr)
	case http.StatusConflict:
		return fmt.Errorf("%w: %w", tangle.ErrDuplicate, apiErr)
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w: %w", tangle.ErrUnknownParent, apiErr)
	default:
		return apiErr
	}
}

// Info fetches node information.
func (c *Client) Info() (InfoResponse, error) {
	var out InfoResponse
	err := c.get("/api/v1/info", &out)
	return out, err
}

// Credit fetches the credit breakdown for an address.
func (c *Client) Credit(addr identity.Address) (CreditResponse, error) {
	var out CreditResponse
	err := c.get("/api/v1/credit?address="+addr.Hex(), &out)
	return out, err
}

// Events fetches the recorded malicious events for an address.
func (c *Client) Events(addr identity.Address) (EventsResponse, error) {
	var out EventsResponse
	err := c.get("/api/v1/events?address="+addr.Hex(), &out)
	return out, err
}

// TipsForApproval implements node.Gateway.
func (c *Client) TipsForApproval() (hashutil.Hash, hashutil.Hash, error) {
	var out TipsResponse
	if err := c.get("/api/v1/tips", &out); err != nil {
		return hashutil.Zero, hashutil.Zero, err
	}
	trunk, err := hashutil.FromHex(out.Trunk)
	if err != nil {
		return hashutil.Zero, hashutil.Zero, fmt.Errorf("parse trunk: %w", err)
	}
	branch, err := hashutil.FromHex(out.Branch)
	if err != nil {
		return hashutil.Zero, hashutil.Zero, fmt.Errorf("parse branch: %w", err)
	}
	return trunk, branch, nil
}

// DifficultyFor implements node.Gateway. On RPC failure it returns 0,
// an out-of-range difficulty that makes the subsequent PoW call fail
// fast instead of mining against a guessed target.
func (c *Client) DifficultyFor(addr identity.Address) int {
	var out DifficultyResponse
	if err := c.get("/api/v1/difficulty?address="+addr.Hex(), &out); err != nil {
		return 0
	}
	return out.Difficulty
}

// GetTransaction implements node.Gateway.
func (c *Client) GetTransaction(id hashutil.Hash) (*txn.Transaction, error) {
	var out TxResponse
	if err := c.get("/api/v1/transactions/"+id.Hex(), &out); err != nil {
		return nil, err
	}
	raw, err := base64.StdEncoding.DecodeString(out.Raw)
	if err != nil {
		return nil, fmt.Errorf("decode transaction: %w", err)
	}
	return txn.Decode(raw)
}

// TransactionsByKind implements node.Gateway.
func (c *Client) TransactionsByKind(kind txn.Kind, offset int) ([]*txn.Transaction, error) {
	q := url.Values{}
	q.Set("kind", strconv.Itoa(int(kind)))
	q.Set("offset", strconv.Itoa(offset))
	var out TxPageResponse
	if err := c.get("/api/v1/transactions?"+q.Encode(), &out); err != nil {
		return nil, err
	}
	txs := make([]*txn.Transaction, 0, len(out.Raw))
	for _, b64 := range out.Raw {
		raw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("decode transaction page: %w", err)
		}
		t, err := txn.Decode(raw)
		if err != nil {
			return nil, err
		}
		txs = append(txs, t)
	}
	return txs, nil
}

// Submit implements node.Gateway.
func (c *Client) Submit(ctx context.Context, t *txn.Transaction) (tangle.Info, error) {
	body, err := json.Marshal(SubmitRequest{
		Raw: base64.StdEncoding.EncodeToString(t.Encode()),
	})
	if err != nil {
		return tangle.Info{}, fmt.Errorf("encode submit request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/api/v1/transactions", bytes.NewReader(body))
	if err != nil {
		return tangle.Info{}, fmt.Errorf("build submit request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return tangle.Info{}, fmt.Errorf("rpc POST transactions: %w", err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if err := decodeResponse(resp, &out); err != nil {
		return tangle.Info{}, err
	}
	id, err := hashutil.FromHex(out.ID)
	if err != nil {
		return tangle.Info{}, fmt.Errorf("parse submitted id: %w", err)
	}
	return tangle.Info{
		ID:               id,
		Sender:           t.Sender(),
		Kind:             t.Kind,
		Status:           parseStatus(out.Status),
		CumulativeWeight: out.CumulativeWeight,
	}, nil
}

func parseStatus(s string) tangle.Status {
	switch s {
	case "confirmed":
		return tangle.StatusConfirmed
	case "rejected":
		return tangle.StatusRejected
	default:
		return tangle.StatusPending
	}
}

// ErrBadBaseURL reports a malformed base URL at construction time.
var ErrBadBaseURL = errors.New("malformed rpc base url")
