package rpc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
)

// supervisedFixture serves the RPC API for a supervised manager node,
// the deployment shape cmd/biot-node now runs: the server re-resolves
// the node through the supervisor and reports its health.
func supervisedFixture(t *testing.T) (*node.Supervisor, *Client, *node.Manager) {
	t.Helper()
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	bus := gossip.NewBus()
	t.Cleanup(func() { bus.Close() })
	sup, err := node.NewSupervisor(node.SupervisorConfig{
		Build: func() (*node.FullNode, error) {
			net, err := bus.Join("rpc-node")
			if err != nil {
				return nil, err
			}
			n, err := node.NewFull(node.FullConfig{
				Key:        key,
				Role:       identity.RoleManager,
				ManagerPub: key.Public(),
				Network:    net,
			})
			if err != nil {
				net.Close()
				return nil, err
			}
			return n, nil
		},
		PersistPath: "rpc.journal",
		FS:          chaos.NewMemFS(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Stop(context.Background()) })
	mgr, err := node.NewManager(sup.Node())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(nil,
		WithNodeSource(sup.Node),
		WithHealth(sup),
	).Handler())
	t.Cleanup(srv.Close)
	return sup, NewClient(srv.URL), mgr
}

func TestHealthEndpointsTrackSupervisor(t *testing.T) {
	ctx := context.Background()
	sup, client, _ := supervisedFixture(t)

	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.State != "running" || !h.Ready || !h.Journal.OK || !h.Transport.OK {
		t.Fatalf("running health = %+v", h)
	}
	if !client.Ready(ctx) {
		t.Fatal("readyz not ok while running")
	}
	if _, err := client.Info(ctx); err != nil {
		t.Fatalf("info through node source: %v", err)
	}

	// Stop drains: readiness flips off, data endpoints 503, healthz
	// still answers (the process is alive, just not serving).
	if err := sup.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if client.Ready(ctx) {
		t.Fatal("readyz still ok after drain")
	}
	if _, err := client.Info(ctx); err == nil {
		t.Fatal("info served with node down")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("info while down err = %v, want 503", err)
		}
	}
	h, err = client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Ready || h.State != "stopped" {
		t.Fatalf("stopped health = %+v", h)
	}

	// Restart: the server resolves the NEW node instance and recovers.
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	if !client.Ready(ctx) {
		t.Fatal("readyz not ok after restart")
	}
	if _, err := client.Info(ctx); err != nil {
		t.Fatalf("info after restart: %v", err)
	}
}

func TestReadyzFlipsDuringGracefulDrain(t *testing.T) {
	ctx := context.Background()
	sup, client, mgr := supervisedFixture(t)
	_ = mgr

	// Readiness and liveness must disagree during a drain: healthz keeps
	// reporting a live (stopped, not failed) process while readyz says
	// "route traffic elsewhere".
	if err := sup.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.State == node.StateFailed.String() {
		t.Fatalf("drained node reports failed: %+v", h)
	}
	if client.Ready(ctx) {
		t.Fatal("drained node still ready")
	}
}

func TestRetryGETRidesOut503(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"address":"aa","role":"manager"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetry(5, time.Millisecond))
	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatalf("retrying GET failed: %v", err)
	}
	if info.Address != "aa" {
		t.Fatalf("info = %+v", info)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestRetryGETStopsOnPermanentError(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetry(5, time.Millisecond))
	if _, err := c.Info(context.Background()); err == nil {
		t.Fatal("400 GET succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls for a permanent error, want 1", got)
	}
}

func TestSubmitNeverRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	f := newFixture(t) // only to mine a valid transaction
	dev := f.authorizedDevice(t)
	res, err := dev.PostReading(context.Background(), []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	tx, err := f.full.GetTransaction(res.Info.ID)
	if err != nil {
		t.Fatal(err)
	}

	c := NewClient(srv.URL, WithRetry(5, time.Millisecond))
	if _, err := c.Submit(context.Background(), tx); err == nil {
		t.Fatal("submit against 503 succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d submits, want exactly 1 (no auto-retry)", got)
	}
}

func TestCallContextDeadline(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the test finishes
	}))
	defer srv.Close()
	defer close(release)

	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Info(ctx)
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}

	// WithCallTimeout supplies a deadline when the caller has none.
	c2 := NewClient(srv.URL, WithCallTimeout(30*time.Millisecond))
	start = time.Now()
	if _, err := c2.Info(context.Background()); err == nil {
		t.Fatal("call timeout ignored")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call timeout took %v to fire", elapsed)
	}
}

func TestRetryRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	// Huge backoff, small deadline: the retry loop must give up on the
	// context rather than sleeping through it.
	c := NewClient(srv.URL, WithRetry(10, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Info(ctx); err == nil {
		t.Fatal("retries succeeded against permanent 503")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context-bounded retry took %v", elapsed)
	}
}
