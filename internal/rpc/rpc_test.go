package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/pow"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

type fixture struct {
	mgr    *node.Manager
	full   *node.FullNode
	client *Client
	srv    *httptest.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	managerKey, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()
	params.InitialDifficulty = 4
	params.MinDifficulty = 1
	params.MaxDifficulty = 20
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     params,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(full).Handler())
	t.Cleanup(srv.Close)
	return &fixture{
		mgr:    mgr,
		full:   full,
		client: NewClient(srv.URL),
		srv:    srv,
	}
}

// authorizedDevice creates and authorizes a light node running over the
// RPC client.
func (f *fixture) authorizedDevice(t *testing.T) *node.LightNode {
	t.Helper()
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	f.mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
	if _, err := f.mgr.PublishAuthorization(context.Background()); err != nil {
		t.Fatal(err)
	}
	light, err := node.NewLight(node.LightConfig{Key: key, Gateway: f.client})
	if err != nil {
		t.Fatal(err)
	}
	return light
}

func TestInfoEndpoint(t *testing.T) {
	f := newFixture(t)
	info, err := f.client.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "manager" {
		t.Errorf("role = %q", info.Role)
	}
	if info.Transactions != 2 { // genesis
		t.Errorf("transactions = %d", info.Transactions)
	}
	if info.Address != f.full.Address().Hex() {
		t.Error("address mismatch")
	}
}

func TestLightNodeOverRPCPostsReading(t *testing.T) {
	f := newFixture(t)
	dev := f.authorizedDevice(t)
	res, err := dev.PostReading(context.Background(), []byte("over-the-wire"))
	if err != nil {
		t.Fatal(err)
	}
	stored, err := f.full.GetTransaction(res.Info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stored.Payload), "over-the-wire") {
		t.Error("payload not stored")
	}
}

func TestTipsEndpoint(t *testing.T) {
	f := newFixture(t)
	trunk, branch, err := f.client.TipsForApproval()
	if err != nil {
		t.Fatal(err)
	}
	if !f.full.Tangle().Contains(trunk) || !f.full.Tangle().Contains(branch) {
		t.Error("tips endpoint returned unknown transactions")
	}
}

func TestDifficultyAndCreditEndpoints(t *testing.T) {
	f := newFixture(t)
	dev := f.authorizedDevice(t)
	if d := f.client.DifficultyFor(dev.Address()); d != 4 {
		t.Errorf("difficulty = %d, want initial 4", d)
	}
	for i := 0; i < 8; i++ {
		if _, err := dev.PostReading(context.Background(), []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	cr, err := f.client.Credit(context.Background(), dev.Address())
	if err != nil {
		t.Fatal(err)
	}
	if cr.CrP <= 0 {
		t.Errorf("CrP = %v after activity", cr.CrP)
	}
	if d := f.client.DifficultyFor(dev.Address()); d > 4 {
		t.Errorf("difficulty rose for honest node: %d", d)
	}
}

func TestGetTransactionNotFound(t *testing.T) {
	f := newFixture(t)
	var missing [32]byte
	missing[0] = 0xAB
	_, err := f.client.GetTransaction(missing)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("err = %v, want 404 APIError", err)
	}
}

func TestSubmitUnauthorizedMapsToSentinel(t *testing.T) {
	f := newFixture(t)
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := node.NewLight(node.LightConfig{Key: key, Gateway: f.client})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rogue.PostReading(context.Background(), []byte("x"))
	if !errors.Is(err, node.ErrUnauthorizedDevice) {
		t.Errorf("err = %v, want ErrUnauthorizedDevice across the wire", err)
	}
}

func TestSubmitWrongDifficultyMapsToSentinel(t *testing.T) {
	f := newFixture(t)
	dev := f.authorizedDevice(t)
	// Build a transaction with insufficient PoW by hand.
	trunk, branch, err := f.client.TipsForApproval()
	if err != nil {
		t.Fatal(err)
	}
	tx := &txn.Transaction{
		Trunk:     trunk,
		Branch:    branch,
		Timestamp: time.Now(),
		Kind:      txn.KindData,
		Payload:   []byte("weak"),
	}
	tx.Sign(dev.Key())
	// Find a nonce that does NOT meet difficulty 4.
	for n := uint64(0); ; n++ {
		if !txn.PowDigest(trunk, branch, n).MeetsDifficulty(4) {
			tx.Nonce = n
			break
		}
	}
	_, err = f.client.Submit(context.Background(), tx)
	if !errors.Is(err, node.ErrWrongDifficulty) {
		t.Errorf("err = %v, want ErrWrongDifficulty", err)
	}
}

func TestSubmitDuplicateMapsToSentinel(t *testing.T) {
	f := newFixture(t)
	dev := f.authorizedDevice(t)
	trunk, branch, err := f.client.TipsForApproval()
	if err != nil {
		t.Fatal(err)
	}
	tx := &txn.Transaction{
		Trunk:     trunk,
		Branch:    branch,
		Timestamp: time.Now(),
		Kind:      txn.KindData,
		Payload:   []byte("dup"),
	}
	tx.Sign(dev.Key())
	w := &pow.Worker{}
	if _, err := w.Attach(context.Background(), tx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.Submit(context.Background(), tx); err != nil {
		t.Fatal(err)
	}
	_, err = f.client.Submit(context.Background(), tx)
	if !errors.Is(err, tangle.ErrDuplicate) {
		t.Errorf("err = %v, want ErrDuplicate", err)
	}
}

func TestTransactionsByKindOverRPC(t *testing.T) {
	f := newFixture(t)
	dev := f.authorizedDevice(t)
	for i := 0; i < 3; i++ {
		if _, err := dev.PostReading(context.Background(), []byte("d")); err != nil {
			t.Fatal(err)
		}
	}
	page, err := f.client.TransactionsByKind(txn.KindData, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 3 {
		t.Errorf("page = %d", len(page))
	}
	page2, err := f.client.TransactionsByKind(txn.KindData, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page2) != 1 {
		t.Errorf("offset page = %d", len(page2))
	}
	// Authorization list also visible by kind.
	auth, err := f.client.TransactionsByKind(txn.KindAuthorization, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(auth) != 1 {
		t.Errorf("auth page = %d", len(auth))
	}
}

func TestBadRequests(t *testing.T) {
	f := newFixture(t)
	paths := []string{
		"/api/v1/difficulty",                   // missing address
		"/api/v1/difficulty?address=zz",        // bad hex
		"/api/v1/credit?address=abcd",          // short hex
		"/api/v1/transactions?kind=99",         // bad kind
		"/api/v1/transactions?kind=1&offset=x", // bad offset
		"/api/v1/transactions/nothex",          // bad id
	}
	for _, p := range paths {
		resp, err := http.Get(f.srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		var body ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", p, resp.StatusCode, body.Error)
		}
	}
}

func TestSubmitMalformedBody(t *testing.T) {
	f := newFixture(t)
	for _, body := range []string{"{not json", `{"raw":"!!!"}`, `{"raw":"aGVsbG8="}`} {
		resp, err := http.Post(f.srv.URL+"/api/v1/transactions", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", body, resp.StatusCode)
		}
	}
}

func TestServerStartAndClose(t *testing.T) {
	f := newFixture(t)
	srv := NewServer(f.full)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	c := NewClient("http://" + addr)
	if _, err := c.Info(context.Background()); err != nil {
		t.Fatalf("info over real listener: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Info(context.Background()); err == nil {
		t.Error("info succeeded after close")
	}
}

func TestEventsEndpoint(t *testing.T) {
	f := newFixture(t)
	dev := f.authorizedDevice(t)

	// No events yet.
	evs, err := f.client.Events(context.Background(), dev.Address())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs.Events) != 0 {
		t.Fatalf("events = %v", evs.Events)
	}

	// Record a punishment directly and read it back over the wire.
	f.full.Engine().Ledger().RecordMalicious(dev.Address(), core.EventRecord{
		Behaviour: core.BehaviourDoubleSpend,
		At:        time.Now(),
		Detail:    "test event",
	})
	evs, err = f.client.Events(context.Background(), dev.Address())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs.Events) != 1 || evs.Events[0].Behaviour != "double-spend" {
		t.Errorf("events = %+v", evs.Events)
	}
	if evs.Events[0].Detail != "test event" {
		t.Errorf("detail = %q", evs.Events[0].Detail)
	}
}

func TestEventsEndpointBadRequest(t *testing.T) {
	f := newFixture(t)
	for _, p := range []string{"/api/v1/events", "/api/v1/events?address=zz"} {
		resp, err := http.Get(f.srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", p, resp.StatusCode)
		}
	}
}
