// Package rpc exposes a full node over a RESTful HTTP interface, the
// counterpart of IRI's HTTP API in the paper's prototype ("It provides a
// convenient RESTful HTTP interface, so light nodes can post
// transactions to full nodes through the RPC interface", §V-A).
//
// Endpoints (all JSON):
//
//	GET  /api/v1/info                         node role, address, ledger stats
//	GET  /api/v1/tips                         two parents for approval
//	GET  /api/v1/difficulty?address=HEX       credit-based PoW difficulty
//	GET  /api/v1/credit?address=HEX           CrP / CrN / Cr breakdown
//	GET  /api/v1/transactions/{idhex}         one transaction (base64 canonical bytes)
//	GET  /api/v1/transactions?kind=K&offset=N page of transactions by kind
//	POST /api/v1/transactions                 submit {"raw": base64}
//
// The Client type implements node.Gateway over this API, so a light node
// runs identically in-process or across the network.
package rpc

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/b-iot/biot/internal/authz"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// InfoResponse is the /info payload.
type InfoResponse struct {
	Address      string `json:"address"`
	Role         string `json:"role"`
	Transactions int    `json:"transactions"`
	Tips         int    `json:"tips"`
	Confirmed    int    `json:"confirmed"`
	Rejected     int    `json:"rejected"`
	Conflicts    int    `json:"conflicts"`
	AuthzSeq     uint64 `json:"authz_seq"`
}

// TipsResponse is the /tips payload.
type TipsResponse struct {
	Trunk  string `json:"trunk"`
	Branch string `json:"branch"`
}

// DifficultyResponse is the /difficulty payload.
type DifficultyResponse struct {
	Address    string `json:"address"`
	Difficulty int    `json:"difficulty"`
}

// CreditResponse is the /credit payload.
type CreditResponse struct {
	Address string  `json:"address"`
	CrP     float64 `json:"cr_p"`
	CrN     float64 `json:"cr_n"`
	Cr      float64 `json:"cr"`
}

// EventResponse is one recorded malicious event in the /events payload.
type EventResponse struct {
	Behaviour string   `json:"behaviour"`
	At        string   `json:"at"` // RFC 3339
	Detail    string   `json:"detail,omitempty"`
	Evidence  []string `json:"evidence,omitempty"`
}

// EventsResponse is the /events payload.
type EventsResponse struct {
	Address string          `json:"address"`
	Events  []EventResponse `json:"events"`
}

// TxResponse carries one canonical transaction encoding.
type TxResponse struct {
	Raw string `json:"raw"` // base64 of txn.Encode()
}

// TxPageResponse carries a page of transactions.
type TxPageResponse struct {
	Raw    []string `json:"raw"`
	Offset int      `json:"offset"` // next offset to poll
}

// SubmitRequest is the POST /transactions body.
type SubmitRequest struct {
	Raw string `json:"raw"`
}

// SubmitResponse reports an accepted submission.
type SubmitResponse struct {
	ID               string `json:"id"`
	Status           string `json:"status"`
	CumulativeWeight int    `json:"cumulative_weight"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code mirrors the HTTP status for clients that surface the body.
	Code int `json:"code"`
}

// HealthSource reports a supervised node's liveness and readiness —
// implemented by node.Supervisor. Wired with WithHealth, it backs the
// /healthz and /readyz probe endpoints.
type HealthSource interface {
	Health() node.Health
}

// Server serves the API for one full node.
type Server struct {
	source func() *node.FullNode
	health HealthSource
	mux    *http.ServeMux
	http   *http.Server
	ln     net.Listener
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithHealth wires a health source (typically the node's Supervisor)
// into /healthz and /readyz. Without it, /healthz reports a static
// "running" and /readyz tracks only whether a node is resolvable.
func WithHealth(hs HealthSource) ServerOption {
	return func(s *Server) { s.health = hs }
}

// WithNodeSource makes the server re-resolve its backing node on every
// request instead of pinning the instance passed to NewServer. A
// supervised deployment needs this: the watchdog replaces the FullNode
// on restart, and a pinned pointer would serve a closed node forever.
// The source may return nil while the node is down (requests get 503).
func WithNodeSource(src func() *node.FullNode) ServerOption {
	return func(s *Server) { s.source = src }
}

// NewServer builds (but does not start) a server for n. n may be nil
// when WithNodeSource provides the node dynamically.
func NewServer(n *node.FullNode, opts ...ServerOption) *Server {
	s := &Server{source: func() *node.FullNode { return n }, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /api/v1/info", s.withNode(s.handleInfo))
	s.mux.HandleFunc("GET /api/v1/tips", s.withNode(s.handleTips))
	s.mux.HandleFunc("GET /api/v1/difficulty", s.withNode(s.handleDifficulty))
	s.mux.HandleFunc("GET /api/v1/credit", s.withNode(s.handleCredit))
	s.mux.HandleFunc("GET /api/v1/events", s.withNode(s.handleEvents))
	s.mux.HandleFunc("GET /api/v1/transactions/{id}", s.withNode(s.handleGetTx))
	s.mux.HandleFunc("GET /api/v1/transactions", s.withNode(s.handleListTx))
	s.mux.HandleFunc("POST /api/v1/transactions", s.withNode(s.handleSubmit))
	return s
}

// ErrNodeUnavailable is served (as 503) while the backing node is down,
// e.g. mid-restart under a Supervisor.
var ErrNodeUnavailable = errors.New("node unavailable")

// withNode resolves the backing node once per request and rejects with
// 503 while it is down, so every data handler can assume a live node.
func (s *Server) withNode(h func(http.ResponseWriter, *http.Request, *node.FullNode)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := s.source()
		if n == nil {
			writeError(w, http.StatusServiceUnavailable, ErrNodeUnavailable)
			return
		}
		h(w, r, n)
	}
}

// handleHealthz reports supervised health: 200 while the node is
// running (or restarting — the watchdog still owns it), 503 once the
// supervisor has given up (state "failed"). The body is the full
// node.Health document, so operators see journal/transport/pipeline
// detail in one probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.health == nil {
		status := http.StatusOK
		if s.source() == nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]string{"state": "running"})
		return
	}
	h := s.health.Health()
	status := http.StatusOK
	if h.State == node.StateFailed.String() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleReadyz is the load-balancer probe: 200 only while the node is
// accepting work. It flips to 503 the moment a graceful drain begins,
// while /healthz stays green — the standard "stop sending traffic, I'm
// not dead" split.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.health == nil {
		status := http.StatusOK
		if s.source() == nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]bool{"ready": status == http.StatusOK})
		return
	}
	h := s.health.Health()
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Handler returns the HTTP handler (for tests with httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc listen %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		_ = s.http.Serve(ln) // returns on Close
	}()
	return nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: status})
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request, n *node.FullNode) {
	stats := n.Tangle().StatsNow()
	writeJSON(w, http.StatusOK, InfoResponse{
		Address:      n.Address().Hex(),
		Role:         n.Role().String(),
		Transactions: stats.Transactions,
		Tips:         stats.Tips,
		Confirmed:    stats.Confirmed,
		Rejected:     stats.Rejected,
		Conflicts:    stats.Conflicts,
		AuthzSeq:     n.Registry().Seq(),
	})
}

func (s *Server) handleTips(w http.ResponseWriter, _ *http.Request, n *node.FullNode) {
	trunk, branch, err := n.TipsForApproval()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, TipsResponse{Trunk: trunk.Hex(), Branch: branch.Hex()})
}

func parseAddress(r *http.Request) (identity.Address, error) {
	raw := r.URL.Query().Get("address")
	if raw == "" {
		return hashutil.Zero, errors.New("missing address parameter")
	}
	return hashutil.FromHex(raw)
}

func (s *Server) handleDifficulty(w http.ResponseWriter, r *http.Request, n *node.FullNode) {
	addr, err := parseAddress(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, DifficultyResponse{
		Address:    addr.Hex(),
		Difficulty: n.DifficultyFor(addr),
	})
}

func (s *Server) handleCredit(w http.ResponseWriter, r *http.Request, n *node.FullNode) {
	addr, err := parseAddress(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c := n.Engine().CreditOf(addr, n.Clock().Now())
	writeJSON(w, http.StatusOK, CreditResponse{
		Address: addr.Hex(),
		CrP:     c.CrP,
		CrN:     c.CrN,
		Cr:      c.Cr,
	})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, n *node.FullNode) {
	addr, err := parseAddress(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	records := n.Engine().Ledger().Events(addr)
	resp := EventsResponse{Address: addr.Hex(), Events: []EventResponse{}}
	for _, rec := range records {
		ev := EventResponse{
			Behaviour: rec.Behaviour.String(),
			At:        rec.At.UTC().Format(time.RFC3339Nano),
			Detail:    rec.Detail,
		}
		for _, id := range rec.Evidence {
			ev.Evidence = append(ev.Evidence, id.Hex())
		}
		resp.Events = append(resp.Events, ev)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetTx(w http.ResponseWriter, r *http.Request, n *node.FullNode) {
	id, err := hashutil.FromHex(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t, err := n.GetTransaction(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, TxResponse{
		Raw: base64.StdEncoding.EncodeToString(t.Encode()),
	})
}

func (s *Server) handleListTx(w http.ResponseWriter, r *http.Request, n *node.FullNode) {
	q := r.URL.Query()
	kindNum, err := strconv.Atoi(q.Get("kind"))
	if err != nil || !txn.Kind(kindNum).Valid() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad kind %q", q.Get("kind")))
		return
	}
	offset := 0
	if rawOffset := q.Get("offset"); rawOffset != "" {
		offset, err = strconv.Atoi(rawOffset)
		if err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", rawOffset))
			return
		}
	}
	txs, err := n.TransactionsByKind(txn.Kind(kindNum), offset)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := TxPageResponse{Offset: offset + len(txs)}
	for _, t := range txs {
		resp.Raw = append(resp.Raw, base64.StdEncoding.EncodeToString(t.Encode()))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, n *node.FullNode) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.Raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode raw: %w", err))
		return
	}
	t, err := txn.Decode(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode transaction: %w", err))
		return
	}
	info, err := n.Submit(r.Context(), t)
	if err != nil {
		writeError(w, statusForSubmitError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{
		ID:               info.ID.Hex(),
		Status:           info.Status.String(),
		CumulativeWeight: info.CumulativeWeight,
	})
}

// statusForSubmitError maps admission failures to HTTP statuses that the
// client maps back to sentinel errors.
func statusForSubmitError(err error) int {
	switch {
	case errors.Is(err, node.ErrUnauthorizedDevice), errors.Is(err, authz.ErrNotManager):
		return http.StatusForbidden
	case errors.Is(err, node.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, node.ErrWrongDifficulty):
		return http.StatusPreconditionFailed
	case errors.Is(err, tangle.ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, tangle.ErrUnknownParent):
		return http.StatusUnprocessableEntity
	default:
		if strings.Contains(err.Error(), "verify transaction") {
			return http.StatusBadRequest
		}
		return http.StatusInternalServerError
	}
}
