// Package rpc exposes a full node over a RESTful HTTP interface, the
// counterpart of IRI's HTTP API in the paper's prototype ("It provides a
// convenient RESTful HTTP interface, so light nodes can post
// transactions to full nodes through the RPC interface", §V-A).
//
// Endpoints (all JSON):
//
//	GET  /api/v1/info                         node role, address, ledger stats
//	GET  /api/v1/tips                         two parents for approval
//	GET  /api/v1/difficulty?address=HEX       credit-based PoW difficulty
//	GET  /api/v1/credit?address=HEX           CrP / CrN / Cr breakdown
//	GET  /api/v1/transactions/{idhex}         one transaction (base64 canonical bytes)
//	GET  /api/v1/transactions?kind=K&offset=N page of transactions by kind
//	POST /api/v1/transactions                 submit {"raw": base64}
//
// The Client type implements node.Gateway over this API, so a light node
// runs identically in-process or across the network.
package rpc

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/b-iot/biot/internal/authz"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// InfoResponse is the /info payload.
type InfoResponse struct {
	Address      string `json:"address"`
	Role         string `json:"role"`
	Transactions int    `json:"transactions"`
	Tips         int    `json:"tips"`
	Confirmed    int    `json:"confirmed"`
	Rejected     int    `json:"rejected"`
	Conflicts    int    `json:"conflicts"`
	AuthzSeq     uint64 `json:"authz_seq"`
}

// TipsResponse is the /tips payload.
type TipsResponse struct {
	Trunk  string `json:"trunk"`
	Branch string `json:"branch"`
}

// DifficultyResponse is the /difficulty payload.
type DifficultyResponse struct {
	Address    string `json:"address"`
	Difficulty int    `json:"difficulty"`
}

// CreditResponse is the /credit payload.
type CreditResponse struct {
	Address string  `json:"address"`
	CrP     float64 `json:"cr_p"`
	CrN     float64 `json:"cr_n"`
	Cr      float64 `json:"cr"`
}

// EventResponse is one recorded malicious event in the /events payload.
type EventResponse struct {
	Behaviour string   `json:"behaviour"`
	At        string   `json:"at"` // RFC 3339
	Detail    string   `json:"detail,omitempty"`
	Evidence  []string `json:"evidence,omitempty"`
}

// EventsResponse is the /events payload.
type EventsResponse struct {
	Address string          `json:"address"`
	Events  []EventResponse `json:"events"`
}

// TxResponse carries one canonical transaction encoding.
type TxResponse struct {
	Raw string `json:"raw"` // base64 of txn.Encode()
}

// TxPageResponse carries a page of transactions.
type TxPageResponse struct {
	Raw    []string `json:"raw"`
	Offset int      `json:"offset"` // next offset to poll
}

// SubmitRequest is the POST /transactions body.
type SubmitRequest struct {
	Raw string `json:"raw"`
}

// SubmitResponse reports an accepted submission.
type SubmitResponse struct {
	ID               string `json:"id"`
	Status           string `json:"status"`
	CumulativeWeight int    `json:"cumulative_weight"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code mirrors the HTTP status for clients that surface the body.
	Code int `json:"code"`
}

// Server serves the API for one full node.
type Server struct {
	node *node.FullNode
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener
}

// NewServer builds (but does not start) a server for n.
func NewServer(n *node.FullNode) *Server {
	s := &Server{node: n, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /api/v1/tips", s.handleTips)
	s.mux.HandleFunc("GET /api/v1/difficulty", s.handleDifficulty)
	s.mux.HandleFunc("GET /api/v1/credit", s.handleCredit)
	s.mux.HandleFunc("GET /api/v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/transactions/{id}", s.handleGetTx)
	s.mux.HandleFunc("GET /api/v1/transactions", s.handleListTx)
	s.mux.HandleFunc("POST /api/v1/transactions", s.handleSubmit)
	return s
}

// Handler returns the HTTP handler (for tests with httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rpc listen %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		_ = s.http.Serve(ln) // returns on Close
	}()
	return nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: status})
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	stats := s.node.Tangle().StatsNow()
	writeJSON(w, http.StatusOK, InfoResponse{
		Address:      s.node.Address().Hex(),
		Role:         s.node.Role().String(),
		Transactions: stats.Transactions,
		Tips:         stats.Tips,
		Confirmed:    stats.Confirmed,
		Rejected:     stats.Rejected,
		Conflicts:    stats.Conflicts,
		AuthzSeq:     s.node.Registry().Seq(),
	})
}

func (s *Server) handleTips(w http.ResponseWriter, _ *http.Request) {
	trunk, branch, err := s.node.TipsForApproval()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, TipsResponse{Trunk: trunk.Hex(), Branch: branch.Hex()})
}

func parseAddress(r *http.Request) (identity.Address, error) {
	raw := r.URL.Query().Get("address")
	if raw == "" {
		return hashutil.Zero, errors.New("missing address parameter")
	}
	return hashutil.FromHex(raw)
}

func (s *Server) handleDifficulty(w http.ResponseWriter, r *http.Request) {
	addr, err := parseAddress(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, DifficultyResponse{
		Address:    addr.Hex(),
		Difficulty: s.node.DifficultyFor(addr),
	})
}

func (s *Server) handleCredit(w http.ResponseWriter, r *http.Request) {
	addr, err := parseAddress(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c := s.node.Engine().CreditOf(addr, s.node.Clock().Now())
	writeJSON(w, http.StatusOK, CreditResponse{
		Address: addr.Hex(),
		CrP:     c.CrP,
		CrN:     c.CrN,
		Cr:      c.Cr,
	})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	addr, err := parseAddress(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	records := s.node.Engine().Ledger().Events(addr)
	resp := EventsResponse{Address: addr.Hex(), Events: []EventResponse{}}
	for _, rec := range records {
		ev := EventResponse{
			Behaviour: rec.Behaviour.String(),
			At:        rec.At.UTC().Format(time.RFC3339Nano),
			Detail:    rec.Detail,
		}
		for _, id := range rec.Evidence {
			ev.Evidence = append(ev.Evidence, id.Hex())
		}
		resp.Events = append(resp.Events, ev)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetTx(w http.ResponseWriter, r *http.Request) {
	id, err := hashutil.FromHex(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t, err := s.node.GetTransaction(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, TxResponse{
		Raw: base64.StdEncoding.EncodeToString(t.Encode()),
	})
}

func (s *Server) handleListTx(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kindNum, err := strconv.Atoi(q.Get("kind"))
	if err != nil || !txn.Kind(kindNum).Valid() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad kind %q", q.Get("kind")))
		return
	}
	offset := 0
	if rawOffset := q.Get("offset"); rawOffset != "" {
		offset, err = strconv.Atoi(rawOffset)
		if err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", rawOffset))
			return
		}
	}
	txs, err := s.node.TransactionsByKind(txn.Kind(kindNum), offset)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := TxPageResponse{Offset: offset + len(txs)}
	for _, t := range txs {
		resp.Raw = append(resp.Raw, base64.StdEncoding.EncodeToString(t.Encode()))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.Raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode raw: %w", err))
		return
	}
	t, err := txn.Decode(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode transaction: %w", err))
		return
	}
	info, err := s.node.Submit(r.Context(), t)
	if err != nil {
		writeError(w, statusForSubmitError(err), err)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{
		ID:               info.ID.Hex(),
		Status:           info.Status.String(),
		CumulativeWeight: info.CumulativeWeight,
	})
}

// statusForSubmitError maps admission failures to HTTP statuses that the
// client maps back to sentinel errors.
func statusForSubmitError(err error) int {
	switch {
	case errors.Is(err, node.ErrUnauthorizedDevice), errors.Is(err, authz.ErrNotManager):
		return http.StatusForbidden
	case errors.Is(err, node.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, node.ErrWrongDifficulty):
		return http.StatusPreconditionFailed
	case errors.Is(err, tangle.ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, tangle.ErrUnknownParent):
		return http.StatusUnprocessableEntity
	default:
		if strings.Contains(err.Error(), "verify transaction") {
			return http.StatusBadRequest
		}
		return http.StatusInternalServerError
	}
}
