package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// GatewayHandle bundles one supervised gateway with its fault
// injectors: the in-memory disk its journal lives on, the skewable
// clock it stamps with, and the faulty network it gossips through
// (rebuilt by the supervisor's Build on every restart, re-applying the
// currently desired fault mix so a restart mid-storm stays in the
// storm).
type GatewayHandle struct {
	Name  string
	Key   *identity.KeyPair
	Disk  *chaos.MemFS
	Clock *chaos.SkewClock
	Sup   *node.Supervisor

	mu      sync.Mutex
	fn      *chaos.FaultyNetwork
	desired chaos.NetFaults
}

// SetFaults applies a fault mix to the gateway's outbound gossip, now
// and across restarts.
func (g *GatewayHandle) SetFaults(f chaos.NetFaults) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.desired = f
	if g.fn != nil {
		g.fn.SetFaults(f)
	}
}

// HealFaults clears the gateway's gossip faults.
func (g *GatewayHandle) HealFaults() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.desired = chaos.NetFaults{}
	if g.fn != nil {
		g.fn.Heal()
	}
}

func (g *GatewayHandle) setNetwork(fn *chaos.FaultyNetwork) chaos.NetFaults {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fn = fn
	return g.desired
}

// DeviceHandle is one IoT device bound to the cluster through a
// roaming gateway delegate, so scenarios can move it between gateways
// (mobility) without rebuilding the light node.
type DeviceHandle struct {
	Light *node.LightNode
	Key   *identity.KeyPair
	roam  *roamingGateway
}

// GatewayIndex reports which gateway the device currently talks to.
func (d *DeviceHandle) GatewayIndex() int { return int(d.roam.idx.Load()) }

// roamingGateway routes a device's gateway calls to whichever gateway
// the scenario currently binds it to, through that gateway's
// supervisor delegate (so restarts re-resolve too).
type roamingGateway struct {
	c   *Cluster
	idx atomic.Int32
}

var _ node.Gateway = (*roamingGateway)(nil)

func (r *roamingGateway) gw() node.Gateway {
	return r.c.Gateways[r.idx.Load()].Sup.Gateway()
}

func (r *roamingGateway) TipsForApproval() (hashutil.Hash, hashutil.Hash, error) {
	return r.gw().TipsForApproval()
}
func (r *roamingGateway) DifficultyFor(addr identity.Address) int {
	return r.gw().DifficultyFor(addr)
}
func (r *roamingGateway) GetTransaction(id hashutil.Hash) (*txn.Transaction, error) {
	return r.gw().GetTransaction(id)
}
func (r *roamingGateway) Submit(ctx context.Context, t *txn.Transaction) (tangle.Info, error) {
	return r.gw().Submit(ctx, t)
}
func (r *roamingGateway) TransactionsByKind(kind txn.Kind, offset int) ([]*txn.Transaction, error) {
	return r.gw().TransactionsByKind(kind, offset)
}

// Cluster is one running deployment under a scenario: a stable manager
// full node plus supervised gateway full nodes journaling to fault-
// injectable disks and gossiping through per-gateway faulty networks,
// with light-node devices bound through roaming delegates. All nodes
// share one virtual clock; per-gateway skew layers on top of it.
type Cluster struct {
	Spec Spec
	Seed int64

	Clk      *clock.Virtual
	Bus      *gossip.Bus
	Mgr      *node.Manager
	MgrNode  *node.FullNode
	Gateways []*GatewayHandle
	Devices  []*DeviceHandle

	// RNG drives the harness's own schedule choices (churn victims,
	// roam targets); derived from the scenario seed.
	RNG *rand.Rand

	phase    atomic.Int64
	mustMu   sync.Mutex
	mustHave map[string]bool

	submitted    atomic.Int64
	admitted     atomic.Int64
	submitErrors atomic.Int64
	unauthorized atomic.Int64

	isolatedMu sync.Mutex
	isolated   map[string]bool
}

// scenarioParams are the default consensus parameters for scenario
// runs: trivial base PoW so hundreds of proofs mine instantly, with a
// clamp ceiling low enough that a punished attacker's raised demand
// stays mineable in-test.
func scenarioParams() core.Params {
	p := core.DefaultParams()
	p.InitialDifficulty = 4
	p.MinDifficulty = 1
	p.MaxDifficulty = 12
	return p
}

// newCluster builds and starts the deployment for a spec.
func newCluster(spec Spec, seed int64) (*Cluster, error) {
	params := spec.Params
	if params == nil {
		params = scenarioParams
	}
	c := &Cluster{
		Spec:     spec,
		Seed:     seed,
		Clk:      clock.NewVirtual(time.Unix(1_700_000_000, 0)),
		Bus:      gossip.NewBus(),
		RNG:      rand.New(rand.NewSource(seed ^ 0x5CE4A210)),
		mustHave: make(map[string]bool),
		isolated: make(map[string]bool),
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	mgrKey, err := identity.Generate()
	if err != nil {
		return fail(err)
	}
	mgrNet, err := c.Bus.Join("mgr")
	if err != nil {
		return fail(err)
	}
	c.MgrNode, err = node.NewFull(node.FullConfig{
		Key:        mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: mgrKey.Public(),
		Credit:     params(),
		Tangle:     spec.Tangle,
		Clock:      c.Clk,
		Network:    mgrNet,
	})
	if err != nil {
		return fail(fmt.Errorf("manager node: %w", err))
	}
	c.Mgr, err = node.NewManager(c.MgrNode)
	if err != nil {
		return fail(err)
	}

	for i := 0; i < spec.Gateways; i++ {
		gwKey, err := identity.Generate()
		if err != nil {
			return fail(err)
		}
		g := &GatewayHandle{
			Name:  fmt.Sprintf("gw-%d", i),
			Key:   gwKey,
			Disk:  chaos.NewMemFS(seed + int64(i)),
			Clock: chaos.NewSkewClock(c.Clk, 0, seed+1000+int64(i)),
		}
		netSeed := seed + 100 + int64(i)
		sup, err := node.NewSupervisor(node.SupervisorConfig{
			Build: func() (*node.FullNode, error) {
				peer, err := c.Bus.Join(g.Name)
				if err != nil {
					return nil, err
				}
				fn := chaos.NewFaultyNetwork(peer, chaos.NetFaults{}, netSeed)
				fn.SetFaults(g.setNetwork(fn))
				n, err := node.NewFull(node.FullConfig{
					Key:        gwKey,
					Role:       identity.RoleGateway,
					ManagerPub: mgrKey.Public(),
					Credit:     params(),
					Tangle:     spec.Tangle,
					Clock:      g.Clock,
					Network:    fn,
				})
				if err != nil {
					fn.Close()
					return nil, err
				}
				return n, nil
			},
			PersistPath:   g.Name + ".journal",
			FS:            g.Disk,
			WatchInterval: 10 * time.Millisecond,
			BackoffBase:   5 * time.Millisecond,
		})
		if err != nil {
			return fail(err)
		}
		g.Sup = sup
		if err := sup.Start(); err != nil {
			return fail(fmt.Errorf("start %s: %v", g.Name, err))
		}
		c.Gateways = append(c.Gateways, g)
	}

	for d := 0; d < spec.Devices; d++ {
		key, err := identity.Generate()
		if err != nil {
			return fail(err)
		}
		roam := &roamingGateway{c: c}
		roam.idx.Store(int32(d % spec.Gateways))
		light, err := node.NewLight(node.LightConfig{
			Key:     key,
			Gateway: roam,
			Clock:   c.Clk,
		})
		if err != nil {
			return fail(err)
		}
		c.Devices = append(c.Devices, &DeviceHandle{Light: light, Key: key, roam: roam})
		c.Mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
	}
	ctx := context.Background()
	if _, err := c.Mgr.PublishAuthorization(ctx); err != nil {
		return fail(fmt.Errorf("publish authorization: %w", err))
	}
	if err := c.MgrNode.FlushBroadcast(ctx); err != nil {
		return fail(err)
	}
	return c, nil
}

// Close tears the deployment down.
func (c *Cluster) Close() {
	ctx := context.Background()
	for _, g := range c.Gateways {
		if g.Sup != nil {
			_ = g.Sup.Stop(ctx)
		}
	}
	if c.MgrNode != nil {
		_ = c.MgrNode.Close()
	}
	if c.Bus != nil {
		_ = c.Bus.Close()
	}
}

// MoveDevice re-binds device d to gateway gw: mobility between
// coverage areas. Call between traffic rounds.
func (c *Cluster) MoveDevice(d, gw int) {
	c.Devices[d].roam.idx.Store(int32(gw))
}

// KillGateway crashes gateway i's machine: the node dies without
// draining and, when reboot is set, the disk power-cycles too (the
// unsynced page cache tears away).
func (c *Cluster) KillGateway(i int, reboot bool) {
	c.Gateways[i].Sup.Kill()
	if reboot {
		c.Gateways[i].Disk.Reboot()
	}
}

// IsolateGateway partitions gateway i from every other node on the
// bus; HealAll lifts it.
func (c *Cluster) IsolateGateway(i int) {
	name := c.Gateways[i].Name
	c.Bus.Isolate(name)
	c.isolatedMu.Lock()
	c.isolated[name] = true
	c.isolatedMu.Unlock()
}

// Unauthorized reports how many device submissions the authorization
// gate rejected so far.
func (c *Cluster) Unauthorized() int64 { return c.unauthorized.Load() }

// Traffic runs one round: every device posts PerPhase readings
// concurrently. With faultsActive, submission failures are the point
// and are only counted; otherwise they abort the round. A transaction
// enters the cluster's zero-loss obligation iff its submit succeeded
// on a node instance whose journal was still verifiably healthy
// afterwards (poison is sticky per instance, so healthy-after proves
// the append fsynced).
func (c *Cluster) Traffic(ctx context.Context, faultsActive bool) error {
	phase := c.phase.Add(1)
	var wg sync.WaitGroup
	errs := make(chan error, len(c.Devices))
	for d, dev := range c.Devices {
		wg.Add(1)
		go func(d int, dev *DeviceHandle) {
			defer wg.Done()
			for i := 0; i < c.Spec.PerPhase; i++ {
				sup := c.Gateways[dev.GatewayIndex()].Sup
				before := sup.Node()
				c.submitted.Add(1)
				res, err := dev.Light.PostReading(ctx,
					[]byte(fmt.Sprintf("%s p%d d%d i%d", c.Spec.Name, phase, d, i)))
				if err != nil {
					c.submitErrors.Add(1)
					if errors.Is(err, node.ErrUnauthorizedDevice) {
						c.unauthorized.Add(1)
					}
					if !faultsActive {
						errs <- fmt.Errorf("clean phase %d device %d: %w", phase, d, err)
						return
					}
					continue
				}
				c.admitted.Add(1)
				after := sup.Node()
				if before != nil && before == after && after.JournalHealthy() {
					c.mustMu.Lock()
					c.mustHave[res.Info.ID.String()] = true
					c.mustMu.Unlock()
				}
			}
		}(d, dev)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// HealAll returns the deployment to a fault-free topology: gossip
// faults clear, partitions lift, crashed gateways restart, and every
// supervisor must report ready within the deadline (watchdog healings
// included).
func (c *Cluster) HealAll(ctx context.Context) error {
	c.isolatedMu.Lock()
	for name := range c.isolated {
		c.Bus.Restore(name)
	}
	c.isolated = make(map[string]bool)
	c.isolatedMu.Unlock()
	for _, g := range c.Gateways {
		g.HealFaults()
		if g.Sup.Node() == nil && g.Sup.State() == node.StateStopped {
			if err := g.Sup.Start(); err != nil && !errors.Is(err, node.ErrSupervisorRunning) {
				return fmt.Errorf("restart %s: %w", g.Name, err)
			}
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, g := range c.Gateways {
		for !g.Sup.Ready() {
			if time.Now().After(deadline) {
				return fmt.Errorf("%s never became ready after healing: %+v", g.Name, g.Sup.Health())
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// staleAuthRejects sums the relay-path authorization-reject counter
// across every live full node.
func (c *Cluster) staleAuthRejects() int64 {
	var total int64
	for _, n := range c.fulls() {
		total += n.CountersView().StaleAuthRejects.Value()
	}
	return total
}

// fulls returns every live full node, manager first.
func (c *Cluster) fulls() []*node.FullNode {
	out := []*node.FullNode{c.MgrNode}
	for _, g := range c.Gateways {
		if n := g.Sup.Node(); n != nil {
			out = append(out, n)
		}
	}
	return out
}

func idSet(n *node.FullNode) map[string]bool {
	set := make(map[string]bool)
	for _, tr := range n.Tangle().Export() {
		set[tr.ID().String()] = true
	}
	return set
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// Converge flushes every node's fan-out pipeline, then pull-syncs the
// cluster to a fixpoint of identical tangle ID sets. It returns the
// number of sync rounds taken and whether the fixpoint was reached.
func (c *Cluster) Converge(ctx context.Context) (rounds int, converged bool, err error) {
	fulls := c.fulls()
	if len(fulls) != c.Spec.Gateways+1 {
		return 0, false, fmt.Errorf("only %d/%d full nodes alive", len(fulls), c.Spec.Gateways+1)
	}
	for _, n := range fulls {
		if err := n.FlushBroadcast(ctx); err != nil {
			return 0, false, fmt.Errorf("flush: %w", err)
		}
	}
	const maxRounds = 40
	for rounds = 1; rounds <= maxRounds; rounds++ {
		for _, n := range fulls {
			n.SyncAll(ctx)
		}
		ref := idSet(fulls[0])
		same := true
		for _, n := range fulls[1:] {
			if !equalSets(ref, idSet(n)) {
				same = false
				break
			}
		}
		if same {
			return rounds, true, nil
		}
	}
	return maxRounds, false, nil
}

// checkZeroLoss verifies every guaranteed-durable transaction is
// present on the reference node (call after Converge reached the
// fixpoint, so presence on one node is presence on all).
func (c *Cluster) checkZeroLoss() (durable, lost int) {
	ref := idSet(c.fulls()[0])
	c.mustMu.Lock()
	defer c.mustMu.Unlock()
	for id := range c.mustHave {
		if !ref[id] {
			lost++
		}
	}
	return len(c.mustHave), lost
}

// checkCreditParity compares every full node's incremental credit
// evaluation against its RescanCredit oracle for every known account,
// at the shared base instant (which is in the past for positively
// skewed gateways — deliberately exercising the evaluator's rewind
// path). It returns the account count of the reference node, the
// worst relative divergence observed, and whether all nodes pass.
func (c *Cluster) checkCreditParity() (accounts int, maxDelta float64, ok bool) {
	now := c.Clk.Now()
	ok = true
	const eps = 1e-9
	for i, n := range c.fulls() {
		ledger := n.Engine().Ledger()
		addrs := ledger.Nodes()
		if i == 0 {
			accounts = len(addrs)
		}
		for _, addr := range addrs {
			oracle := ledger.RescanCredit(addr, now)
			got := ledger.CreditOf(addr, now)
			for _, pair := range [][2]float64{
				{got.CrP, oracle.CrP}, {got.CrN, oracle.CrN}, {got.Cr, oracle.Cr},
			} {
				rel := math.Abs(pair[0]-pair[1]) / (1 + math.Abs(pair[0]) + math.Abs(pair[1]))
				if rel > maxDelta {
					maxDelta = rel
				}
				if rel > eps {
					ok = false
				}
			}
		}
	}
	return accounts, maxDelta, ok
}

// totalRestarts sums watchdog/explicit restarts across gateways.
func (c *Cluster) totalRestarts() int64 {
	var total int64
	for _, g := range c.Gateways {
		total += g.Sup.Restarts()
	}
	return total
}

// maliciousEvents counts behaviour events recorded on the reference
// node across all accounts.
func (c *Cluster) maliciousEvents() int {
	ledger := c.fulls()[0].Engine().Ledger()
	total := 0
	for _, addr := range ledger.Nodes() {
		total += len(ledger.Events(addr))
	}
	return total
}
