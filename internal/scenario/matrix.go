package scenario

import (
	"context"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/attack"
	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/identity"
)

// sizes returns the deployment shape for a tier. TierCI totals 20
// nodes (5 gateways + 14 devices + manager); TierLong totals 111
// (10 + 100 + manager).
func sizes(tier Tier) (gateways, devices, perPhase, stormRounds int) {
	if tier == TierLong {
		return 10, 100, 2, 3
	}
	return 5, 14, 2, 2
}

// base returns a spec skeleton sized for the tier.
func base(tier Tier, name, about string) Spec {
	gw, dev, per, rounds := sizes(tier)
	return Spec{
		Name: name, About: about, Tier: tier,
		Gateways: gw, Devices: dev, PerPhase: per, StormRounds: rounds,
		Link: LinkClean,
	}
}

// authorizeFresh generates n fresh device keys, authorizes them with
// the manager and pushes the updated list to every gateway.
func authorizeFresh(ctx context.Context, c *Cluster, n int) ([]*identity.KeyPair, error) {
	keys := make([]*identity.KeyPair, n)
	for i := range keys {
		key, err := identity.Generate()
		if err != nil {
			return nil, err
		}
		keys[i] = key
		c.Mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
	}
	if _, err := c.Mgr.PublishAuthorization(ctx); err != nil {
		return nil, err
	}
	return keys, c.MgrNode.FlushBroadcast(ctx)
}

// Matrix returns every named scenario sized for the tier. The set
// covers the classes the roadmap demands: lossy links (wlan-congested,
// lpwan-partition), churn and mobility (device-churn-mobility),
// authorization storms (revocation-storm), adversarial campaigns
// (parasite-chain, credit-farm-sybil), clock skew (skewed-clocks), and
// the machine-level soak (machine-carnage).
func Matrix(tier Tier) []Spec {
	return []Spec{
		wlanCongested(tier),
		lpwanPartition(tier),
		deviceChurnMobility(tier),
		revocationStorm(tier),
		parasiteChain(tier),
		creditFarmSybil(tier),
		skewedClocks(tier),
		MachineCarnage(tier),
	}
}

// SpecByName returns the named scenario sized for the tier.
func SpecByName(name string, tier Tier) (Spec, bool) {
	for _, spec := range Matrix(tier) {
		if spec.Name == name {
			return spec, true
		}
	}
	return Spec{}, false
}

// wlanCongested: every gateway uplink degrades to a saturated 802.11
// cell for the storm. Pure link stress — no node ever dies.
func wlanCongested(tier Tier) Spec {
	spec := base(tier, "wlan-congested",
		"all gateway uplinks saturate: 12% loss, jitter, duplicates, reordering")
	spec.Link = LinkWLANCongested
	return spec
}

// lpwanPartition: heavy low-power-WAN loss on every uplink, and one
// gateway drops out of coverage entirely mid-storm.
func lpwanPartition(tier Tier) Spec {
	spec := base(tier, "lpwan-partition",
		"lossy LPWAN uplinks (30% loss) plus one gateway fully out of coverage")
	spec.Link = LinkLPWANLossy
	spec.Inject = func(ctx context.Context, c *Cluster) error {
		c.IsolateGateway(len(c.Gateways) - 1)
		return nil
	}
	spec.Check = func(c *Cluster, r *Result) error {
		r.Notes = fmt.Sprintf("gw-%d isolated through the storm", len(c.Gateways)-1)
		return nil
	}
	return spec
}

// deviceChurnMobility: devices roam between gateways every round while
// one gateway's machine crashes (disk power-cycle included) and comes
// back only at heal time.
func deviceChurnMobility(tier Tier) Spec {
	spec := base(tier, "device-churn-mobility",
		"25% of devices roam gateways each round; one gateway machine crashes and reboots")
	spec.Link = LinkWLANGood
	moved := 0
	spec.Inject = func(ctx context.Context, c *Cluster) error {
		c.KillGateway(0, true)
		return nil
	}
	spec.OnRound = func(ctx context.Context, c *Cluster, round int) error {
		for i := 0; i < len(c.Devices)/4; i++ {
			d := c.RNG.Intn(len(c.Devices))
			c.MoveDevice(d, c.RNG.Intn(len(c.Gateways)))
			moved++
		}
		return nil
	}
	spec.Check = func(c *Cluster, r *Result) error {
		if moved == 0 {
			return fmt.Errorf("no device ever roamed")
		}
		r.Notes = fmt.Sprintf("%d roam events; gw-0 crashed with disk reboot", moved)
		return nil
	}
	return spec
}

// revocationStorm: the manager churns the authorization list through
// the storm — a rotating batch of devices is revoked each round and
// reinstated the next. Revoked devices' submissions must be rejected
// at the gate; after the final reinstatement everything must flow
// again. The storm lives in the authorization plane, so the link stays
// clean: the Check pins the EXACT rejection count, which is only sound
// when every revocation broadcast reaches every gateway before that
// round's traffic (a lossy uplink can defer an authorization
// transaction behind a dropped parent and let a revoked submission
// slip through the stale gate).
func revocationStorm(tier Tier) Spec {
	spec := base(tier, "revocation-storm",
		"rotating batches of devices revoked and reinstated through the data authority")
	spec.Link = LinkClean
	var revoked []int
	var expectRejects int64
	publish := func(ctx context.Context, c *Cluster) error {
		if _, err := c.Mgr.PublishAuthorization(ctx); err != nil {
			return err
		}
		return c.MgrNode.FlushBroadcast(ctx)
	}
	spec.OnRound = func(ctx context.Context, c *Cluster, round int) error {
		for _, d := range revoked {
			c.Mgr.AuthorizeDevice(c.Devices[d].Key.Public(), c.Devices[d].Key.BoxPublic())
		}
		batch := len(c.Devices) / 4
		if batch < 1 {
			batch = 1
		}
		revoked = revoked[:0]
		for i := 0; i < batch; i++ {
			d := (round*batch + i) % len(c.Devices)
			revoked = append(revoked, d)
			c.Mgr.DeauthorizeDevice(c.Devices[d].Key.Public())
		}
		expectRejects += int64(batch * c.Spec.PerPhase)
		return publish(ctx, c)
	}
	spec.Heal = func(ctx context.Context, c *Cluster) error {
		for _, d := range revoked {
			c.Mgr.AuthorizeDevice(c.Devices[d].Key.Public(), c.Devices[d].Key.BoxPublic())
		}
		revoked = revoked[:0]
		return publish(ctx, c)
	}
	spec.Check = func(c *Cluster, r *Result) error {
		if r.Unauthorized != expectRejects {
			return fmt.Errorf("authorization gate rejected %d submissions, want exactly %d",
				r.Unauthorized, expectRejects)
		}
		// The evidence-at-admission gate makes relay admission
		// order-independent, so a storm of revocations and
		// reinstatements must produce ZERO relay-path rejects — the old
		// live-registry gate flaked here (~8%/run) when a revocation
		// list overtook an older still-valid reading in the gossip
		// order and orphaned the reading's descendants.
		if r.StaleAuthRejects != 0 {
			return fmt.Errorf("%d relay-path authorization rejects; the evidence gate requires 0",
				r.StaleAuthRejects)
		}
		mgrSeq := c.MgrNode.Registry().Seq()
		for i, n := range c.fulls() {
			if seq := n.Registry().Seq(); seq != mgrSeq {
				return fmt.Errorf("full node %d registry at list seq %d, manager at %d (orphaned auth list)",
					i, seq, mgrSeq)
			}
			for d, dev := range c.Devices {
				if !n.Registry().IsAuthorizedDevice(dev.Key.Address()) {
					return fmt.Errorf("device %d still revoked on full node %d after the storm", d, i)
				}
			}
			if q := n.QuarantineLen(); q != 0 {
				return fmt.Errorf("full node %d still holds %d quarantined transactions after healing", i, q)
			}
		}
		r.Notes = fmt.Sprintf("%d revocation rejects, 0 stale-gate, all registries at seq %d, all reinstated",
			r.Unauthorized, mgrSeq)
		return nil
	}
	return spec
}

// parasiteChain: an authorized insider mounts the parasite-chain
// double spend (a conflicting transfer buried under a self-approving
// side chain that evades stale-anchor detection). The defence under
// test: the conflict event lands, the attacker's difficulty rises
// above honest devices', and honest traffic suffers zero loss.
func parasiteChain(tier Tier) Spec {
	spec := base(tier, "parasite-chain",
		"insider grows a self-approving side chain to bury a conflicting spend")
	var atkAddr identity.Address
	spec.Inject = func(ctx context.Context, c *Cluster) error {
		keys, err := authorizeFresh(ctx, c, 1)
		if err != nil {
			return err
		}
		atkAddr = keys[0].Address()
		atk, err := attack.New(attack.Config{
			Key: keys[0], Gateway: c.Gateways[0].Sup.Gateway(), Clock: c.Clk,
		})
		if err != nil {
			return err
		}
		v1, _ := identity.Generate()
		v2, _ := identity.Generate()
		res, err := atk.ParasiteChain(ctx, v1.Address(), v2.Address(), 10, 0, 6)
		if err != nil {
			return fmt.Errorf("parasite campaign: %w", err)
		}
		if res.Accepted == 0 {
			return fmt.Errorf("parasite chain grew no links: %+v", res)
		}
		return nil
	}
	spec.Check = func(c *Cluster, r *Result) error {
		ref := c.fulls()[0]
		if r.MaliciousEvents == 0 {
			return fmt.Errorf("no behaviour events recorded for a double-spending insider")
		}
		atkDiff := ref.DifficultyFor(atkAddr)
		honDiff := ref.DifficultyFor(c.Devices[0].Key.Address())
		if atkDiff <= honDiff {
			return fmt.Errorf("attacker difficulty %d not above honest %d", atkDiff, honDiff)
		}
		r.Notes = fmt.Sprintf("attacker difficulty %d vs honest %d", atkDiff, honDiff)
		return nil
	}
	return spec
}

// creditFarmSybil: an authorized colluder ring farms positive credit
// with micro-transactions while a Sybil flood of fabricated identities
// hammers another gateway. The gate must reject every Sybil; the
// farmers' difficulty may fall but never below the clamp floor; and
// the credit window must stay oracle-exact throughout.
func creditFarmSybil(tier Tier) Spec {
	spec := base(tier, "credit-farm-sybil",
		"authorized ring farms credit for cheap PoW while unauthorized Sybils flood")
	colluders := 3
	if tier == TierLong {
		colluders = 5
	}
	var farm attack.CreditFarmResult
	var sybil attack.SybilResult
	spec.Inject = func(ctx context.Context, c *Cluster) error {
		keys, err := authorizeFresh(ctx, c, colluders)
		if err != nil {
			return err
		}
		if farm, err = attack.CreditFarm(ctx, c.Gateways[0].Sup.Gateway(), nil, c.Clk, keys, 4); err != nil {
			return fmt.Errorf("credit farm: %w", err)
		}
		gw := c.Gateways[1%len(c.Gateways)].Sup.Gateway()
		if sybil, err = attack.SybilFlood(ctx, gw, nil, c.Clk, 10); err != nil {
			return fmt.Errorf("sybil flood: %w", err)
		}
		return nil
	}
	spec.Check = func(c *Cluster, r *Result) error {
		if sybil.Accepted != 0 {
			return fmt.Errorf("%d Sybil submissions crossed the authorization gate", sybil.Accepted)
		}
		if farm.Accepted != farm.Submitted {
			return fmt.Errorf("authorized farm traffic rejected: %+v", farm)
		}
		if farm.EndDifficulty > farm.StartDifficulty {
			return fmt.Errorf("farming raised difficulty %d → %d", farm.StartDifficulty, farm.EndDifficulty)
		}
		if floor := c.fulls()[0].Engine().Ledger().Params().MinDifficulty; farm.EndDifficulty < floor {
			return fmt.Errorf("difficulty %d fell below clamp floor %d", farm.EndDifficulty, floor)
		}
		r.Notes = fmt.Sprintf("sybils 0/%d admitted; farm difficulty %d→%d",
			sybil.Identities, farm.StartDifficulty, farm.EndDifficulty)
		return nil
	}
	return spec
}

// skewedClocks: half the gateways jump 30 s forward, half 30 s
// backward, on a mildly lossy link. The pinned assertions are the
// whole point: convergence, zero loss and oracle-exact credit must
// hold while peers disagree about the time by a minute (the backward
// jumpers also exercise the monotonic clamp and the credit window's
// rewind path).
func skewedClocks(tier Tier) Spec {
	spec := base(tier, "skewed-clocks",
		"gateway clocks drift ±30s during the storm; skew persists after healing")
	spec.Link = LinkWLANGood
	spec.SkewJump = 30 * time.Second
	return spec
}

// MachineCarnage is the chaos soak expressed as a scenario (the
// node-level soak test consumes it): one gateway machine dies with a
// disk power-cycle, another's disk poisons its next fsync (the
// watchdog must notice and restart it), two more gossip through heavy
// composed faults, and one is partitioned from the bus entirely.
// Exported so the soak test can run exactly this cell under its
// legacy BIOT_CHAOS_SEED.
func MachineCarnage(tier Tier) Spec {
	spec := base(tier, "machine-carnage",
		"machine crash + disk reboot, fsync poison, heavy gossip faults, full partition")
	spec.Inject = func(ctx context.Context, c *Cluster) error {
		c.KillGateway(0, true)
		c.Gateways[1].Disk.InjectSyncError(nil)
		c.Gateways[2].SetFaults(chaos.NetFaults{
			DropProb: 0.2, DupProb: 0.2, DelayMax: 200 * time.Microsecond, ReorderProb: 0.1,
		})
		c.Gateways[3%len(c.Gateways)].SetFaults(chaos.NetFaults{
			DropProb: 0.3, DupProb: 0.1, DelayMax: 300 * time.Microsecond,
		})
		c.IsolateGateway(3 % len(c.Gateways))
		return nil
	}
	spec.Heal = func(ctx context.Context, c *Cluster) error {
		// The poisoned journal heals through the watchdog, not through
		// HealAll: insist on the restart so the closing phase runs
		// against a genuinely recovered node.
		sup := c.Gateways[1].Sup
		deadline := time.Now().Add(10 * time.Second)
		for sup.Restarts() == 0 || !sup.Ready() {
			if time.Now().After(deadline) {
				return fmt.Errorf("watchdog never healed gw-1's poisoned journal: %+v", sup.Health())
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	spec.Check = func(c *Cluster, r *Result) error {
		if r.Restarts < 1 {
			return fmt.Errorf("watchdog recorded no restarts despite the fsync poison")
		}
		r.Notes = fmt.Sprintf("%d watchdog restarts; gw-0 rebooted; gw-%d partitioned",
			r.Restarts, 3%len(c.Gateways))
		return nil
	}
	return spec
}
