package scenario

import (
	"context"
	"os"
	"strconv"
	"testing"
)

// scenarioSeed returns the matrix's master seed: BIOT_SCENARIO_SEED
// replays a failing cell exactly; otherwise a fixed default keeps CI
// deterministic.
func scenarioSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("BIOT_SCENARIO_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BIOT_SCENARIO_SEED: %v", err)
		}
		return seed
	}
	return 0xB107
}

// shortSubset is the matrix slice that still runs under -short: one
// cheap representative per class that doesn't mine attack campaigns.
var shortSubset = map[string]bool{
	"wlan-congested":        true,
	"device-churn-mobility": true,
	"revocation-storm":      true,
}

func runMatrix(t *testing.T, tier Tier) {
	seed := scenarioSeed(t)
	for _, spec := range Matrix(tier) {
		spec := spec
		if testing.Short() && !shortSubset[spec.Name] {
			continue
		}
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(context.Background(), spec, seed)
			if err != nil {
				t.Fatalf("[seed %d — rerun with BIOT_SCENARIO_SEED=%d] %s: %v\nrow: %+v",
					seed, seed, spec.Name, err, res)
			}
			t.Logf("%s: %d nodes, %d/%d admitted, %d durable (0 lost), converged in %d sync rounds, "+
				"tangle %d, credit parity max Δ %.2g, restarts %d%s",
				spec.Name, res.Nodes, res.Admitted, res.Submitted, res.Durable,
				res.SyncRounds, res.TangleSize, res.MaxCreditDelta, res.Restarts,
				notesSuffix(res.Notes))
		})
	}
}

func notesSuffix(notes string) string {
	if notes == "" {
		return ""
	}
	return " — " + notes
}

// TestScenarioMatrix runs every named scenario at the 20-node CI tier
// (a class-covering subset under -short). Each cell enforces the
// pinned assertions: convergence, zero admitted-transaction loss, and
// credit-oracle parity on every node.
func TestScenarioMatrix(t *testing.T) {
	runMatrix(t, TierCI)
}

// TestScenarioMatrixLong runs the matrix at the 100+-node tier. It is
// opt-in via BIOT_SCENARIO_LONG=1 (make test-scenarios-long) so the
// ordinary suite stays fast, and never runs under -short.
func TestScenarioMatrixLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long tier runs 111 nodes")
	}
	if os.Getenv("BIOT_SCENARIO_LONG") == "" {
		t.Skip("set BIOT_SCENARIO_LONG=1 (or run make test-scenarios-long) to run the 100+-node tier")
	}
	runMatrix(t, TierLong)
}

// TestRevocationStormFlakeSweep replays the revocation-storm cell at
// many DISTINCT seeds — the cell that used to flake ~8%/run when relay
// admission was judged against the live registry instead of admission
// evidence. Five seeds ride in the ordinary suite as a smoke test;
// make test-flake raises it to 60 via BIOT_FLAKE_RUNS, which at the old
// flake rate had >99% probability of reproducing at least one failure.
// Every run must also finish with zero relay-path authorization
// rejects: the fix is only credible if the storm produces NO stale-gate
// activity at all, not merely a recovered registry.
func TestRevocationStormFlakeSweep(t *testing.T) {
	runs := 5
	if env := os.Getenv("BIOT_FLAKE_RUNS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("BIOT_FLAKE_RUNS: bad value %q", env)
		}
		runs = v
	}
	base := scenarioSeed(t)
	for i := 0; i < runs; i++ {
		seed := base + int64(i)
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			// A fresh Spec per run: the storm hooks close over mutable
			// per-run state (revocation rotation, expected rejects).
			spec, ok := SpecByName("revocation-storm", TierCI)
			if !ok {
				t.Fatal("revocation-storm missing from the matrix")
			}
			res, err := Run(context.Background(), spec, seed)
			if err != nil {
				t.Fatalf("[rerun with BIOT_SCENARIO_SEED=%d] %v\nrow: %+v", seed, err, res)
			}
			if res.StaleAuthRejects != 0 {
				t.Fatalf("[seed %d] %d stale-gate rejects, want 0", seed, res.StaleAuthRejects)
			}
		})
	}
}

// TestSpecByName pins the registry surface the soak test and the
// bench experiment depend on.
func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("machine-carnage", TierCI); !ok {
		t.Fatal("machine-carnage missing from the matrix")
	}
	if _, ok := SpecByName("no-such-scenario", TierCI); ok {
		t.Fatal("unknown name resolved")
	}
	specs := Matrix(TierCI)
	if len(specs) < 6 {
		t.Fatalf("matrix has %d scenarios, want ≥ 6", len(specs))
	}
	seen := make(map[string]bool)
	for _, spec := range specs {
		if seen[spec.Name] {
			t.Fatalf("duplicate scenario name %q", spec.Name)
		}
		seen[spec.Name] = true
		gw, dev, _, _ := sizes(TierLong)
		if spec.Tier == TierCI && spec.Gateways+spec.Devices+1 != 20 {
			t.Errorf("%s: CI tier is %d nodes, want 20", spec.Name, spec.Gateways+spec.Devices+1)
		}
		if gw+dev+1 < 100 {
			t.Errorf("long tier is %d nodes, want 100+", gw+dev+1)
		}
	}
}
