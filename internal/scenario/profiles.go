package scenario

import (
	"time"

	"github.com/b-iot/biot/internal/chaos"
)

// LinkProfile is a named outbound-gossip fault mix modeling one
// wireless regime. The presets follow the qualitative regimes the
// PBFT-for-IoT measurement study found to change consensus behaviour:
// a clean wired baseline, a healthy WLAN, a congested WLAN, and a
// lossy low-power wide-area link. Delays are scaled to microseconds/
// low milliseconds so scenario wall-clock stays test-sized — the mix
// (loss ≫ delay ≫ duplication) is what's modeled, not absolute RTTs.
type LinkProfile struct {
	Name   string
	Faults chaos.NetFaults
}

// Link profiles, ordered from benign to hostile.
var (
	// LinkClean injects nothing: the wired-lab baseline.
	LinkClean = LinkProfile{Name: "clean"}

	// LinkWLANGood is a healthy 802.11 cell: occasional loss, small
	// jitter, rare link-layer retransmit duplicates.
	LinkWLANGood = LinkProfile{Name: "wlan-good", Faults: chaos.NetFaults{
		DropProb: 0.02,
		DupProb:  0.02,
		DelayMax: 200 * time.Microsecond,
	}}

	// LinkWLANCongested is a saturated cell: double-digit loss,
	// visible jitter, retransmit duplicates, and enough queueing that
	// datagrams overtake each other.
	LinkWLANCongested = LinkProfile{Name: "wlan-congested", Faults: chaos.NetFaults{
		DropProb:    0.12,
		DupProb:     0.08,
		DelayMax:    time.Millisecond,
		ReorderProb: 0.08,
	}}

	// LinkLPWANLossy is a long-range low-power link at the edge of its
	// budget: heavy loss, long delays, duty-cycle-induced reordering.
	LinkLPWANLossy = LinkProfile{Name: "lpwan-lossy", Faults: chaos.NetFaults{
		DropProb:    0.30,
		DupProb:     0.10,
		DelayMax:    3 * time.Millisecond,
		ReorderProb: 0.15,
	}}
)
