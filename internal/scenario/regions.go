package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/tangle"
	"github.com/b-iot/biot/internal/txn"
)

// Multi-region harness for the two-tier sharded topology (DESIGN.md
// §16): the manager and each region's border gateway sit on a backbone
// bus, every region runs its own regional bus, and each region's
// gateways admit light-node data traffic into the region's own tangle
// namespace. The single-bus Cluster's convergence assertion (every
// full node holds the identical tangle) is deliberately FALSE here —
// data namespaces must NOT replicate across regions — so regional
// deployments get their own cluster type with sharding-aware
// assertions: per-region convergence, global control-plane
// convergence, zero cross-shard leakage, zero durable loss, and
// credit carried across device roams.

// RegionSpec sizes a multi-region deployment.
type RegionSpec struct {
	// Name identifies the run in test names and result rows.
	Name string
	// Regions is the region (= data shard) count; region r admits into
	// namespace r+1.
	Regions int
	// GatewaysPerRegion is the regional cluster size; gateway 0 of each
	// region is the border gateway, additionally attached to the
	// backbone.
	GatewaysPerRegion int
	// DevicesPerRegion is the light-node population bound to each
	// region at start (devices can roam later).
	DevicesPerRegion int
	// PerPhase is submissions per device per traffic round.
	PerPhase int
	// ReconcileInterval is passed through to the nodes (the scenario
	// drives Reconcile explicitly, so this only matters if a test also
	// starts RunReconcileLoop).
	ReconcileInterval time.Duration
	// Tangle overrides the ledger config; zero selects node defaults.
	Tangle tangle.Config
}

// RegionHandle is one region of the deployment.
type RegionHandle struct {
	// Shard is the region's data namespace (region index + 1).
	Shard uint32
	// Bus is the region-local gossip fabric.
	Bus *gossip.Bus
	// Gateways are the region's supervised gateways; index 0 is the
	// border gateway (also on the backbone).
	Gateways []*GatewayHandle
}

// RegionDevice is one device bound to the deployment through a
// cross-region roaming delegate.
type RegionDevice struct {
	Light *node.LightNode
	Key   *identity.KeyPair
	roam  *regionRoam
}

// Location reports the (region, gateway) the device currently talks to.
func (d *RegionDevice) Location() (region, gateway int) {
	return int(d.roam.region.Load()), int(d.roam.gw.Load())
}

// regionRoam routes a device's gateway calls to whichever regional
// gateway the scenario currently binds it to, through that gateway's
// supervisor delegate so restarts re-resolve.
type regionRoam struct {
	c      *RegionCluster
	region atomic.Int32
	gw     atomic.Int32
}

var _ node.Gateway = (*regionRoam)(nil)

func (r *regionRoam) handle() *GatewayHandle {
	return r.c.Regions[r.region.Load()].Gateways[r.gw.Load()]
}
func (r *regionRoam) gateway() node.Gateway { return r.handle().Sup.Gateway() }

func (r *regionRoam) TipsForApproval() (hashutil.Hash, hashutil.Hash, error) {
	return r.gateway().TipsForApproval()
}
func (r *regionRoam) DifficultyFor(addr identity.Address) int {
	return r.gateway().DifficultyFor(addr)
}
func (r *regionRoam) GetTransaction(id hashutil.Hash) (*txn.Transaction, error) {
	return r.gateway().GetTransaction(id)
}
func (r *regionRoam) Submit(ctx context.Context, t *txn.Transaction) (tangle.Info, error) {
	return r.gateway().Submit(ctx, t)
}
func (r *regionRoam) TransactionsByKind(kind txn.Kind, offset int) ([]*txn.Transaction, error) {
	return r.gateway().TransactionsByKind(kind, offset)
}

// RegionCluster is one running multi-region deployment.
type RegionCluster struct {
	Spec RegionSpec
	Seed int64

	Clk      *clock.Virtual
	Backbone *gossip.Bus
	Mgr      *node.Manager
	MgrNode  *node.FullNode
	Regions  []*RegionHandle
	Devices  []*RegionDevice

	phase atomic.Int64

	// mustHave maps a guaranteed-durable transaction ID to the region
	// it was admitted in — the region whose namespace must retain it.
	mustMu   sync.Mutex
	mustHave map[string]int

	submitted    atomic.Int64
	admitted     atomic.Int64
	submitErrors atomic.Int64
}

// NewRegionCluster builds and starts the deployment: manager on the
// backbone, Regions × GatewaysPerRegion supervised gateways journaling
// to fault-injectable in-memory disks, DevicesPerRegion devices per
// region, all authorized and the initial list published.
func NewRegionCluster(spec RegionSpec, seed int64) (*RegionCluster, error) {
	c := &RegionCluster{
		Spec:     spec,
		Seed:     seed,
		Clk:      clock.NewVirtual(time.Unix(1_700_000_000, 0)),
		Backbone: gossip.NewBus(),
		mustHave: make(map[string]int),
	}
	fail := func(err error) (*RegionCluster, error) {
		c.Close()
		return nil, err
	}

	mgrKey, err := identity.Generate()
	if err != nil {
		return fail(err)
	}
	mgrNet, err := c.Backbone.Join("mgr")
	if err != nil {
		return fail(err)
	}
	c.MgrNode, err = node.NewFull(node.FullConfig{
		Key:        mgrKey,
		Role:       identity.RoleManager,
		ManagerPub: mgrKey.Public(),
		Credit:     scenarioParams(),
		Tangle:     spec.Tangle,
		Clock:      c.Clk,
		Network:    mgrNet,
	})
	if err != nil {
		return fail(fmt.Errorf("manager node: %w", err))
	}
	c.Mgr, err = node.NewManager(c.MgrNode)
	if err != nil {
		return fail(err)
	}

	for r := 0; r < spec.Regions; r++ {
		reg := &RegionHandle{Shard: uint32(r + 1), Bus: gossip.NewBus()}
		c.Regions = append(c.Regions, reg)
		for gi := 0; gi < spec.GatewaysPerRegion; gi++ {
			gwKey, err := identity.Generate()
			if err != nil {
				return fail(err)
			}
			g := &GatewayHandle{
				Name:  fmt.Sprintf("r%d-gw%d", r, gi),
				Key:   gwKey,
				Disk:  chaos.NewMemFS(seed + int64(r*100+gi)),
				Clock: chaos.NewSkewClock(c.Clk, 0, seed+1000+int64(r*100+gi)),
			}
			border := gi == 0
			netSeed := seed + 5000 + int64(r*100+gi)
			sup, err := node.NewSupervisor(node.SupervisorConfig{
				Build: func() (*node.FullNode, error) {
					peer, err := reg.Bus.Join(g.Name)
					if err != nil {
						return nil, err
					}
					fn := chaos.NewFaultyNetwork(peer, chaos.NetFaults{}, netSeed)
					fn.SetFaults(g.setNetwork(fn))
					cfg := node.FullConfig{
						Key:               gwKey,
						Role:              identity.RoleGateway,
						ManagerPub:        mgrKey.Public(),
						Credit:            scenarioParams(),
						Tangle:            spec.Tangle,
						Clock:             g.Clock,
						Network:           fn,
						ShardID:           reg.Shard,
						ReconcileInterval: spec.ReconcileInterval,
					}
					if border {
						bb, err := c.Backbone.Join(g.Name)
						if err != nil {
							fn.Close()
							return nil, err
						}
						cfg.Backbone = bb
					}
					n, err := node.NewFull(cfg)
					if err != nil {
						fn.Close()
						return nil, err
					}
					return n, nil
				},
				PersistPath:   g.Name + ".journal",
				FS:            g.Disk,
				WatchInterval: 10 * time.Millisecond,
				BackoffBase:   5 * time.Millisecond,
			})
			if err != nil {
				return fail(err)
			}
			g.Sup = sup
			if err := sup.Start(); err != nil {
				return fail(fmt.Errorf("start %s: %v", g.Name, err))
			}
			reg.Gateways = append(reg.Gateways, g)
		}

		for d := 0; d < spec.DevicesPerRegion; d++ {
			key, err := identity.Generate()
			if err != nil {
				return fail(err)
			}
			roam := &regionRoam{c: c}
			roam.region.Store(int32(r))
			roam.gw.Store(int32(d % spec.GatewaysPerRegion))
			light, err := node.NewLight(node.LightConfig{
				Key:     key,
				Gateway: roam,
				Clock:   c.Clk,
			})
			if err != nil {
				return fail(err)
			}
			c.Devices = append(c.Devices, &RegionDevice{Light: light, Key: key, roam: roam})
			c.Mgr.AuthorizeDevice(key.Public(), key.BoxPublic())
		}
	}

	ctx := context.Background()
	if _, err := c.Mgr.PublishAuthorization(ctx); err != nil {
		return fail(fmt.Errorf("publish authorization: %w", err))
	}
	if err := c.MgrNode.FlushBroadcast(ctx); err != nil {
		return fail(err)
	}
	return c, nil
}

// Close tears the deployment down.
func (c *RegionCluster) Close() {
	ctx := context.Background()
	for _, reg := range c.Regions {
		for _, g := range reg.Gateways {
			if g.Sup != nil {
				_ = g.Sup.Stop(ctx)
			}
		}
	}
	if c.MgrNode != nil {
		_ = c.MgrNode.Close()
	}
	for _, reg := range c.Regions {
		if reg.Bus != nil {
			_ = reg.Bus.Close()
		}
	}
	if c.Backbone != nil {
		_ = c.Backbone.Close()
	}
}

// fulls returns every live full node: manager first, then gateways in
// region order.
func (c *RegionCluster) fulls() []*node.FullNode {
	out := []*node.FullNode{c.MgrNode}
	for _, reg := range c.Regions {
		for _, g := range reg.Gateways {
			if n := g.Sup.Node(); n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// MoveDevice roams device d to (region, gateway): IoT mobility across
// coverage areas and administrative regions. Call between rounds.
func (c *RegionCluster) MoveDevice(d, region, gateway int) {
	c.Devices[d].roam.region.Store(int32(region))
	c.Devices[d].roam.gw.Store(int32(gateway))
}

// Traffic runs one round: every device posts PerPhase readings
// concurrently to its current gateway. With faultsActive, submission
// failures are counted only; otherwise they abort the round. A
// transaction enters the zero-loss obligation — tagged with the region
// it was admitted in — iff its submit succeeded on a node instance
// whose journal was still verifiably healthy afterwards.
func (c *RegionCluster) Traffic(ctx context.Context, faultsActive bool) error {
	phase := c.phase.Add(1)
	var wg sync.WaitGroup
	errs := make(chan error, len(c.Devices))
	for d, dev := range c.Devices {
		wg.Add(1)
		go func(d int, dev *RegionDevice) {
			defer wg.Done()
			for i := 0; i < c.Spec.PerPhase; i++ {
				region, _ := dev.Location()
				sup := dev.roam.handle().Sup
				before := sup.Node()
				c.submitted.Add(1)
				res, err := dev.Light.PostReading(ctx,
					[]byte(fmt.Sprintf("%s p%d d%d i%d", c.Spec.Name, phase, d, i)))
				if err != nil {
					c.submitErrors.Add(1)
					if !faultsActive {
						errs <- fmt.Errorf("clean phase %d device %d: %w", phase, d, err)
						return
					}
					continue
				}
				c.admitted.Add(1)
				after := sup.Node()
				if before != nil && before == after && after.JournalHealthy() {
					c.mustMu.Lock()
					c.mustHave[res.Info.ID.String()] = region
					c.mustMu.Unlock()
				}
			}
		}(d, dev)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// ReconcileAll flushes every node's fan-out, then runs one Reconcile
// round on every gateway (border gateways pull the backbone, every
// gateway spreads credit regionally).
func (c *RegionCluster) ReconcileAll(ctx context.Context) error {
	for _, n := range c.fulls() {
		if err := n.FlushBroadcast(ctx); err != nil {
			return err
		}
	}
	for _, reg := range c.Regions {
		for _, g := range reg.Gateways {
			if n := g.Sup.Node(); n != nil {
				n.Reconcile(ctx)
			}
		}
	}
	return nil
}

// shardSet collects one namespace's resident IDs on a node.
func shardSet(n *node.FullNode, shard uint32) map[string]bool {
	set := make(map[string]bool)
	for _, id := range n.Tangle().OrderedShardIDs(shard, 0, math.MaxInt32) {
		set[id.String()] = true
	}
	return set
}

// Converge drives regional syncs and backbone reconciliation to a
// sharded fixpoint: the control namespace identical on every full
// node, and each region's data namespace identical across that
// region's gateways. It returns the rounds taken and whether the
// fixpoint was reached.
func (c *RegionCluster) Converge(ctx context.Context) (rounds int, converged bool, err error) {
	alive := c.fulls()
	want := 1 + c.Spec.Regions*c.Spec.GatewaysPerRegion
	if len(alive) != want {
		return 0, false, fmt.Errorf("only %d/%d full nodes alive", len(alive), want)
	}
	const maxRounds = 40
	for rounds = 1; rounds <= maxRounds; rounds++ {
		if err := c.ReconcileAll(ctx); err != nil {
			return rounds, false, err
		}
		for _, reg := range c.Regions {
			for _, g := range reg.Gateways {
				if n := g.Sup.Node(); n != nil {
					n.SyncAll(ctx)
				}
			}
		}
		if c.atFixpoint() {
			return rounds, true, nil
		}
	}
	return maxRounds, false, nil
}

func (c *RegionCluster) atFixpoint() bool {
	ref := shardSet(c.MgrNode, 0)
	for _, reg := range c.Regions {
		var regional map[string]bool
		for gi, g := range reg.Gateways {
			n := g.Sup.Node()
			if n == nil {
				return false
			}
			if !equalSets(ref, shardSet(n, 0)) {
				return false
			}
			if gi == 0 {
				regional = shardSet(n, reg.Shard)
			} else if !equalSets(regional, shardSet(n, reg.Shard)) {
				return false
			}
		}
	}
	return true
}

// checkZeroLoss verifies every guaranteed-durable transaction is still
// resident in the namespace of the region that admitted it (call
// after Converge, so one gateway per region speaks for all).
func (c *RegionCluster) checkZeroLoss() (durable, lost int) {
	regional := make([]map[string]bool, len(c.Regions))
	for r, reg := range c.Regions {
		regional[r] = shardSet(reg.Gateways[0].Sup.Node(), reg.Shard)
	}
	c.mustMu.Lock()
	defer c.mustMu.Unlock()
	for id, r := range c.mustHave {
		if !regional[r][id] {
			lost++
		}
	}
	return len(c.mustHave), lost
}

// checkNoLeakage verifies data-namespace isolation: no gateway holds a
// single vertex of another region's shard, and the manager holds no
// data shard at all.
func (c *RegionCluster) checkNoLeakage() error {
	for _, reg := range c.Regions {
		if n := c.MgrNode.Tangle().ShardSize(reg.Shard); n != 0 {
			return fmt.Errorf("manager holds %d vertices of shard %d", n, reg.Shard)
		}
		for _, other := range c.Regions {
			if other.Shard == reg.Shard {
				continue
			}
			for gi, g := range reg.Gateways {
				n := g.Sup.Node()
				if n == nil {
					continue
				}
				if got := n.Tangle().ShardSize(other.Shard); got != 0 {
					return fmt.Errorf("region %d gateway %d holds %d vertices of foreign shard %d",
						reg.Shard-1, gi, got, other.Shard)
				}
			}
		}
	}
	return nil
}

// checkCreditParity compares every full node's incremental credit
// against its RescanCredit oracle for every known account.
func (c *RegionCluster) checkCreditParity() (accounts int, maxDelta float64, ok bool) {
	now := c.Clk.Now()
	ok = true
	const eps = 1e-9
	for i, n := range c.fulls() {
		ledger := n.Engine().Ledger()
		addrs := ledger.Nodes()
		if i == 0 {
			accounts = len(addrs)
		}
		for _, addr := range addrs {
			oracle := ledger.RescanCredit(addr, now)
			got := ledger.CreditOf(addr, now)
			for _, pair := range [][2]float64{
				{got.CrP, oracle.CrP}, {got.CrN, oracle.CrN}, {got.Cr, oracle.Cr},
			} {
				rel := math.Abs(pair[0]-pair[1]) / (1 + math.Abs(pair[0]) + math.Abs(pair[1]))
				if rel > maxDelta {
					maxDelta = rel
				}
				if rel > eps {
					ok = false
				}
			}
		}
	}
	return accounts, maxDelta, ok
}

// WaitReady blocks until every supervisor reports ready (watchdog
// restarts included) or the deadline passes.
func (c *RegionCluster) WaitReady() error {
	deadline := time.Now().Add(15 * time.Second)
	for _, reg := range c.Regions {
		for _, g := range reg.Gateways {
			for !g.Sup.Ready() {
				if time.Now().After(deadline) {
					return fmt.Errorf("%s never became ready: %+v", g.Name, g.Sup.Health())
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	return nil
}

// RegionResult is a multi-region run's machine-readable outcome row
// (the shard experiment embeds it per cell).
type RegionResult struct {
	Name              string `json:"name"`
	Seed              int64  `json:"seed"`
	Regions           int    `json:"regions"`
	GatewaysPerRegion int    `json:"gateways_per_region"`
	Devices           int    `json:"devices"`

	Submitted    int64 `json:"submitted"`
	Admitted     int64 `json:"admitted"`
	SubmitErrors int64 `json:"submit_errors"`

	Durable     int  `json:"guaranteed_durable"`
	LostDurable int  `json:"lost_durable"`
	Converged   bool `json:"converged"`
	SyncRounds  int  `json:"sync_rounds"`

	ControlSize    int     `json:"control_namespace_size"`
	ShardSizes     []int   `json:"shard_sizes"`
	CreditAccounts int     `json:"credit_accounts"`
	CreditParityOK bool    `json:"credit_parity_ok"`
	MaxCreditDelta float64 `json:"max_credit_delta"`
	Restarts       int64   `json:"watchdog_restarts"`
}

// Finish converges the cluster and fills + enforces the sharded
// assertions: fixpoint reached, zero durable loss, zero cross-shard
// leakage, credit parity on every node. The row is filled as far as
// the run got even on failure.
func (c *RegionCluster) Finish(ctx context.Context) (RegionResult, error) {
	res := RegionResult{
		Name:              c.Spec.Name,
		Seed:              c.Seed,
		Regions:           c.Spec.Regions,
		GatewaysPerRegion: c.Spec.GatewaysPerRegion,
		Devices:           len(c.Devices),
		Submitted:         c.submitted.Load(),
		Admitted:          c.admitted.Load(),
		SubmitErrors:      c.submitErrors.Load(),
	}
	for _, reg := range c.Regions {
		for _, g := range reg.Gateways {
			res.Restarts += g.Sup.Restarts()
		}
	}
	rounds, converged, err := c.Converge(ctx)
	res.SyncRounds, res.Converged = rounds, converged
	if err != nil {
		return res, err
	}
	if !converged {
		return res, fmt.Errorf("regions did not reach the sharded fixpoint within %d rounds", rounds)
	}
	res.ControlSize = c.MgrNode.Tangle().ShardSize(0)
	for _, reg := range c.Regions {
		res.ShardSizes = append(res.ShardSizes, reg.Gateways[0].Sup.Node().Tangle().ShardSize(reg.Shard))
	}
	res.Durable, res.LostDurable = c.checkZeroLoss()
	if res.LostDurable > 0 {
		return res, fmt.Errorf("%d of %d guaranteed-durable transactions lost",
			res.LostDurable, res.Durable)
	}
	if err := c.checkNoLeakage(); err != nil {
		return res, err
	}
	res.CreditAccounts, res.MaxCreditDelta, res.CreditParityOK = c.checkCreditParity()
	if !res.CreditParityOK {
		return res, fmt.Errorf("incremental credit diverged from the RescanCredit oracle (max rel delta %.3g)",
			res.MaxCreditDelta)
	}
	return res, nil
}

// errGatewayDown is returned by helpers that need a live node.
var errGatewayDown = errors.New("gateway has no live node")

// BorderNode returns region r's border gateway node.
func (c *RegionCluster) BorderNode(r int) (*node.FullNode, error) {
	n := c.Regions[r].Gateways[0].Sup.Node()
	if n == nil {
		return nil, errGatewayDown
	}
	return n, nil
}
