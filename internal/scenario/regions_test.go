package scenario

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// TestMultiRegionRoam is the sharded topology's scenario cell: two
// regions of two gateways each behind a backbone, devices submitting
// in both regions, one device roaming from region 0 to region 1
// mid-run, and region 0's border gateway crash-rebooting (power-cycled
// disk) after the roam. The pinned assertions, enforced by Finish:
// sharded fixpoint (control namespace global, data namespaces
// region-local), zero guaranteed-durable loss through the crash, zero
// cross-shard leakage, and credit-oracle parity on every node. On top
// of those, the roam itself must carry credit: the destination
// gateway — NOT on the backbone — evaluates the roamer's earned
// credit and demands at most a stranger's difficulty, agreeing with
// the source region's view exactly.
func TestMultiRegionRoam(t *testing.T) {
	seed := scenarioSeed(t)
	ctx := context.Background()
	spec := RegionSpec{
		Name:              "multi-region-roam",
		Regions:           2,
		GatewaysPerRegion: 2,
		DevicesPerRegion:  3,
		PerPhase:          2,
	}
	c, err := NewRegionCluster(spec, seed)
	if err != nil {
		t.Fatalf("[seed %d] build: %v", seed, err)
	}
	defer c.Close()

	// Initial convergence distributes the authorization list to every
	// gateway (backbone to the borders, regional sync inward).
	if _, ok, err := c.Converge(ctx); err != nil || !ok {
		t.Fatalf("[seed %d] initial converge: ok=%v err=%v", seed, ok, err)
	}

	// Two clean rounds of regional traffic build the roamer's history.
	for round := 0; round < 2; round++ {
		if err := c.Traffic(ctx, false); err != nil {
			t.Fatalf("[seed %d] baseline round %d: %v", seed, round, err)
		}
		c.Clk.Advance(time.Second)
		if err := c.ReconcileAll(ctx); err != nil {
			t.Fatalf("[seed %d] reconcile: %v", seed, err)
		}
	}

	// The roamer earned all its credit in region 0.
	roamer := c.Devices[0].Key.Address()
	src, err := c.BorderNode(0)
	if err != nil {
		t.Fatal(err)
	}
	now := c.Clk.Now()
	srcCredit := src.Engine().Ledger().CreditOf(roamer, now)
	if srcCredit.CrP <= 0 {
		t.Fatalf("[seed %d] roamer earned no positive credit at home: %+v", seed, srcCredit)
	}

	// Two reconcile rounds carry it across: backbone border-to-border,
	// then the regional credit pull inward to the non-border gateway.
	for i := 0; i < 2; i++ {
		if err := c.ReconcileAll(ctx); err != nil {
			t.Fatalf("[seed %d] roam reconcile: %v", seed, err)
		}
	}
	dst := c.Regions[1].Gateways[1].Sup.Node()
	if dst == nil {
		t.Fatalf("[seed %d] destination gateway down", seed)
	}
	dstCredit := dst.Engine().Ledger().CreditOf(roamer, now)
	if dstCredit.CrP <= 0 {
		t.Fatalf("[seed %d] credit not carried to destination region: %+v", seed, dstCredit)
	}
	if math.Abs(srcCredit.Cr-dstCredit.Cr) > 1e-9 ||
		math.Abs(srcCredit.CrP-dstCredit.CrP) > 1e-9 ||
		math.Abs(srcCredit.CrN-dstCredit.CrN) > 1e-9 {
		t.Fatalf("[seed %d] regions disagree on roamed credit: %+v vs %+v", seed, srcCredit, dstCredit)
	}
	// Difficulty travels with the credit: the destination demands at
	// most what it would ask of a total stranger, and exactly what the
	// home region asks.
	stranger := identity.Address(hashutil.Sum([]byte("stranger")))
	if d, s := dst.DifficultyFor(roamer), dst.DifficultyFor(stranger); d > s {
		t.Fatalf("[seed %d] roamer's difficulty %d exceeds a stranger's %d", seed, d, s)
	}
	if d, h := dst.DifficultyFor(roamer), src.DifficultyFor(roamer); d != h {
		t.Fatalf("[seed %d] destination demands %d bits, home %d", seed, d, h)
	}

	// Roam to region 1's NON-border gateway and keep submitting — the
	// roamed history must be honored at admission.
	c.MoveDevice(0, 1, 1)
	if err := c.Traffic(ctx, false); err != nil {
		t.Fatalf("[seed %d] post-roam round: %v", seed, err)
	}
	c.Clk.Advance(time.Second)

	// Crash region 0's border gateway machine, power-cycling its disk.
	// The watchdog restarts it; journal replay must rebuild the same
	// sharded state (data in namespace 1, control in namespace 0).
	c.Regions[0].Gateways[0].Sup.Kill()
	c.Regions[0].Gateways[0].Disk.Reboot()
	if err := c.Regions[0].Gateways[0].Sup.Start(); err != nil {
		t.Fatalf("[seed %d] restart border gateway: %v", seed, err)
	}
	if err := c.WaitReady(); err != nil {
		t.Fatalf("[seed %d] %v", seed, err)
	}
	if err := c.Traffic(ctx, false); err != nil {
		t.Fatalf("[seed %d] closing round: %v", seed, err)
	}
	c.Clk.Advance(time.Second)

	res, err := c.Finish(ctx)
	if err != nil {
		t.Fatalf("[seed %d — rerun with BIOT_SCENARIO_SEED=%d] %v\nrow: %+v", seed, seed, err, res)
	}
	if floor := len(c.Devices) * spec.PerPhase * 2; res.Durable < floor {
		t.Fatalf("[seed %d] only %d durable transactions tracked, floor %d", seed, res.Durable, floor)
	}
	t.Logf("%s: %d/%d admitted, %d durable (0 lost), fixpoint in %d rounds, control %d, shards %v, "+
		"credit parity max Δ %.2g, restarts %d",
		res.Name, res.Admitted, res.Submitted, res.Durable, res.SyncRounds,
		res.ControlSize, res.ShardSizes, res.MaxCreditDelta, res.Restarts)
}
