// Package scenario is a seed-deterministic scenario-matrix harness:
// it composes the chaos primitives (fault-injected disks and gossip,
// skewable clocks), the supervised node lifecycle, and the attack
// library into named, parameterized scenarios — lossy wireless links,
// device churn and mobility, authorization storms, adversarial
// campaigns — and runs each against a full deployment with one pinned
// set of survival assertions:
//
//   - convergence: after healing, every full node holds the identical
//     tangle;
//   - zero admitted-transaction loss: nothing whose submit succeeded
//     on a verifiably healthy journal may vanish;
//   - credit integrity: every node's incremental credit evaluation
//     matches its from-scratch RescanCredit oracle.
//
// Every random choice — disk tear survival, gossip fault schedules,
// churn victims — derives from one seed, so a failing cell is replayed
// by pinning BIOT_SCENARIO_SEED. Each run produces a machine-readable
// Result row; biot-bench -fig scenarios collects the rows into
// BENCH_scenarios.json.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/tangle"
)

// Tier scales a scenario's deployment.
type Tier int

const (
	// TierCI is the 20-node tier (gateways + devices + manager) that
	// runs in the ordinary test suite.
	TierCI Tier = iota
	// TierLong is the 100+-node tier behind make test-scenarios-long
	// and biot-bench -fig scenarios.
	TierLong
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	if t == TierLong {
		return "long"
	}
	return "ci"
}

// MarshalJSON writes the tier by name, so result snapshots read
// "long"/"ci" instead of an enum ordinal.
func (t Tier) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// Spec is one named scenario: a deployment shape, a link profile, and
// hooks that script the storm. Hooks may be nil; traffic, healing,
// convergence and the pinned assertions are the harness's job.
type Spec struct {
	// Name identifies the scenario in test names, result rows and docs.
	Name string
	// About is a one-line description for docs and result tables.
	About string
	// Tier records which tier the spec was sized for.
	Tier Tier

	// Gateways/Devices size the deployment (plus one manager node).
	Gateways int
	Devices  int
	// PerPhase is submissions per device per traffic round.
	PerPhase int
	// StormRounds is how many faulted traffic rounds run between
	// Inject and healing (min 1).
	StormRounds int

	// Link is the wireless regime applied to every gateway's outbound
	// gossip for the storm.
	Link LinkProfile
	// SkewJump, when non-zero, jumps gateway clocks at storm start:
	// even-indexed gateways forward, odd-indexed backward.
	SkewJump time.Duration

	// Params overrides the consensus parameters; nil selects the
	// scenario defaults. Tangle overrides the ledger config; the zero
	// value selects node defaults.
	Params func() core.Params
	Tangle tangle.Config

	// Inject runs once at storm start (after Link/SkewJump apply);
	// OnRound runs before each storm traffic round; Heal runs after the
	// harness's own HealAll; Check runs last against the filled result
	// row and may reject it.
	Inject  func(ctx context.Context, c *Cluster) error
	OnRound func(ctx context.Context, c *Cluster, round int) error
	Heal    func(ctx context.Context, c *Cluster) error
	Check   func(c *Cluster, r *Result) error
}

// Result is one scenario's machine-readable outcome row.
type Result struct {
	Scenario string `json:"scenario"`
	About    string `json:"about,omitempty"`
	Tier     string `json:"tier"`
	Seed     int64  `json:"seed"`

	Gateways int `json:"gateways"`
	Devices  int `json:"devices"`
	Nodes    int `json:"nodes"` // gateways + devices + manager

	Submitted    int64 `json:"submitted"`
	Admitted     int64 `json:"admitted"`
	SubmitErrors int64 `json:"submit_errors"`
	Unauthorized int64 `json:"unauthorized_rejects"`
	// StaleAuthRejects sums the fleet's relay-path authorization
	// rejects. Under the evidence-at-admission gate it must be zero in
	// every Sybil-free scenario — including revocation storms.
	StaleAuthRejects int64 `json:"stale_auth_rejects"`

	Durable     int  `json:"guaranteed_durable"`
	LostDurable int  `json:"lost_durable"`
	Converged   bool `json:"converged"`
	SyncRounds  int  `json:"sync_rounds"`
	TangleSize  int  `json:"tangle_size"`

	Restarts        int64   `json:"watchdog_restarts"`
	CreditAccounts  int     `json:"credit_accounts"`
	CreditParityOK  bool    `json:"credit_parity_ok"`
	MaxCreditDelta  float64 `json:"max_credit_delta"`
	MaliciousEvents int     `json:"malicious_events"`

	Notes     string  `json:"notes,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Run executes one scenario at the given seed: build the deployment,
// run a clean baseline round, apply the storm (link profile, clock
// skew, Inject, then StormRounds of traffic with OnRound scripting),
// heal, run a clean closing round, converge, and enforce the pinned
// assertions. The returned error is non-nil iff the scenario FAILED —
// the Result row is still filled as far as the run got, for diagnosis.
func Run(ctx context.Context, spec Spec, seed int64) (res Result, err error) {
	res = Result{
		Scenario: spec.Name,
		About:    spec.About,
		Tier:     spec.Tier.String(),
		Seed:     seed,
		Gateways: spec.Gateways,
		Devices:  spec.Devices,
		Nodes:    spec.Gateways + spec.Devices + 1,
	}
	start := time.Now()
	defer func() { res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000 }()

	c, err := newCluster(spec, seed)
	if err != nil {
		return res, fmt.Errorf("build cluster: %w", err)
	}
	defer c.Close()
	fill := func() {
		res.Submitted = c.submitted.Load()
		res.Admitted = c.admitted.Load()
		res.SubmitErrors = c.submitErrors.Load()
		res.Unauthorized = c.unauthorized.Load()
		res.StaleAuthRejects = c.staleAuthRejects()
		res.Restarts = c.totalRestarts()
	}

	// Clean baseline: every submission must succeed.
	if err := c.Traffic(ctx, false); err != nil {
		fill()
		return res, fmt.Errorf("baseline: %w", err)
	}
	c.Clk.Advance(time.Second)

	// Storm.
	for _, g := range c.Gateways {
		g.SetFaults(spec.Link.Faults)
	}
	if spec.SkewJump != 0 {
		for i, g := range c.Gateways {
			if i%2 == 0 {
				g.Clock.Jump(spec.SkewJump)
			} else {
				g.Clock.Jump(-spec.SkewJump)
			}
		}
	}
	if spec.Inject != nil {
		if err := spec.Inject(ctx, c); err != nil {
			fill()
			return res, fmt.Errorf("inject: %w", err)
		}
	}
	rounds := spec.StormRounds
	if rounds < 1 {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		if spec.OnRound != nil {
			if err := spec.OnRound(ctx, c, round); err != nil {
				fill()
				return res, fmt.Errorf("storm round %d: %w", round, err)
			}
		}
		if err := c.Traffic(ctx, true); err != nil {
			fill()
			return res, fmt.Errorf("storm traffic %d: %w", round, err)
		}
		c.Clk.Advance(time.Second)
	}

	// Heal and close out cleanly.
	if err := c.HealAll(ctx); err != nil {
		fill()
		return res, fmt.Errorf("heal: %w", err)
	}
	if spec.Heal != nil {
		if err := spec.Heal(ctx, c); err != nil {
			fill()
			return res, fmt.Errorf("scenario heal: %w", err)
		}
	}
	if err := c.Traffic(ctx, false); err != nil {
		fill()
		return res, fmt.Errorf("closing phase: %w", err)
	}
	c.Clk.Advance(time.Second)

	// Converge and assert.
	rounds, converged, err := c.Converge(ctx)
	fill()
	res.SyncRounds = rounds
	res.Converged = converged
	if err != nil {
		return res, err
	}
	res.TangleSize = len(idSet(c.fulls()[0]))
	res.Durable, res.LostDurable = c.checkZeroLoss()
	res.CreditAccounts, res.MaxCreditDelta, res.CreditParityOK = c.checkCreditParity()
	res.MaliciousEvents = c.maliciousEvents()

	if !converged {
		return res, fmt.Errorf("nodes did not converge within %d sync rounds", rounds)
	}
	if res.LostDurable > 0 {
		return res, fmt.Errorf("%d of %d guaranteed-durable transactions lost",
			res.LostDurable, res.Durable)
	}
	if min := int(int64(spec.Devices) * int64(spec.PerPhase) * 2); res.Durable < min {
		// The two clean phases alone guarantee this floor; fewer means
		// the durability bookkeeping itself broke.
		return res, fmt.Errorf("only %d guaranteed-durable transactions tracked, floor %d",
			res.Durable, min)
	}
	if !res.CreditParityOK {
		return res, fmt.Errorf("incremental credit diverged from the RescanCredit oracle (max rel delta %.3g)",
			res.MaxCreditDelta)
	}
	if spec.Check != nil {
		if err := spec.Check(c, &res); err != nil {
			return res, fmt.Errorf("scenario check: %w", err)
		}
	}
	return res, nil
}
