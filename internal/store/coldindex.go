// Cold-region membership index: the on-disk half of the tangle's
// hot/cold split (internal/tangle/cold.go). Every transaction ID pruned
// by a local snapshot is appended here; the tangle consults the index
// when an admission check misses both the live vertices and the
// boundary-root set. The index's in-memory footprint is FIXED — a bloom
// filter plus a tiny run directory — no matter how many IDs accumulate
// over the node's lifetime; that fixed bound is what makes pruning
// actually shrink node memory instead of trading a vertex map for an ID
// map.
//
// File layout: a fixed header followed by runs, each run a sorted batch
// of 32-byte IDs from one snapshot epoch.
//
//	header: magic uint32 = 0xB10CC01D | version uint32 = 1
//	run:    magic uint32 = 0xB10CF05E | count uint32 |
//	        crc32 uint32 (Castagnoli, over epoch+ids) |
//	        epoch int64 (UnixNano, big endian) | count × 32-byte IDs
//
// Lookups test the bloom filter first (no false negatives: a miss is
// definitive); a possible hit binary-searches each run on disk, newest
// first, so false positives cost a few seeks, never a wrong answer. As
// the ID population grows past the filter's design point the false
// positive rate degrades gracefully toward more disk probes — memory
// stays flat, correctness is untouched.
//
// Runs are merged (streamed, deduplicated, constant memory) into one
// sorted run via the same write-temp/fsync/rename pattern as
// Log.Compact once the run count passes a threshold, keeping per-lookup
// probes bounded. Torn tails from a crash mid-append are truncated on
// open, and a failed write or sync poisons the index — same failure
// model as the journal.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/hashutil"
)

const (
	coldMagic    uint32 = 0xB10CC01D
	coldVersion  uint32 = 1
	coldHdrSize         = 8
	runMagic     uint32 = 0xB10CF05E
	runHdrSize          = 20
	coldIDSize          = 32
	maxRunCount         = 1 << 28 // sanity bound on a run header's count
	// maxColdRuns triggers a merge: bounds per-lookup disk probes and
	// dedupes re-added boundary roots.
	maxColdRuns = 16
	// coldBloomBits is the fixed bloom filter size (2^21 bits = 256
	// KiB). At 100k cold IDs the false-positive rate is ~1e-3; it
	// degrades toward 1 as the population grows far past that, which
	// costs disk probes, not correctness or memory.
	coldBloomBits = 1 << 21
	// mergeChunkIDs is the per-run read window during a streaming
	// merge (256 IDs = 8 KiB per run, ≤ maxColdRuns+1 runs live).
	mergeChunkIDs = 256
)

// ErrColdPoisoned reports a write against a cold index whose backing
// file failed a write or sync.
var ErrColdPoisoned = errors.New("cold index poisoned by earlier I/O failure")

type coldRun struct {
	off   int64 // file offset of the first ID
	count int
	epoch int64 // UnixNano of the snapshot cutoff
}

// ColdIndex is the durable membership index for pruned transaction IDs.
// It implements tangle.ColdStore. Safe for concurrent use.
type ColdIndex struct {
	mu    sync.Mutex
	fs    chaos.FS
	f     chaos.File
	path  string
	runs  []coldRun
	n     int   // IDs on disk (duplicates counted until merged)
	bytes int64 // file size
	bloom []uint64
	err   error // sticky poison
}

// OpenColdIndex opens (creating if needed) the cold index at path on
// fs, scans its runs to rebuild the bloom filter, and truncates any
// torn tail (durably, like the journal's recovery).
func OpenColdIndex(fs chaos.FS, path string) (*ColdIndex, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open cold index: %w", err)
	}
	c := &ColdIndex{fs: fs, f: f, path: path, bloom: make([]uint64, coldBloomBits/64)}
	if err := c.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// recover classifies the header, scans runs (building the bloom filter
// and verifying CRCs) and truncates at the first tear.
func (c *ColdIndex) recover() error {
	size, err := c.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("size cold index: %w", err)
	}
	hdr := make([]byte, coldHdrSize)
	fresh := true
	if size >= coldHdrSize {
		if _, err := c.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("seek cold index: %w", err)
		}
		if _, err := io.ReadFull(c.f, hdr); err != nil {
			return fmt.Errorf("read cold header: %w", err)
		}
		fresh = binary.BigEndian.Uint32(hdr[0:4]) != coldMagic ||
			binary.BigEndian.Uint32(hdr[4:8]) != coldVersion
	}
	if fresh {
		// Empty, torn-header or foreign file: start over, durably.
		if err := c.f.Truncate(0); err != nil {
			return fmt.Errorf("reset cold index: %w", err)
		}
		if _, err := c.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("seek cold index: %w", err)
		}
		binary.BigEndian.PutUint32(hdr[0:4], coldMagic)
		binary.BigEndian.PutUint32(hdr[4:8], coldVersion)
		if _, err := c.f.Write(hdr); err != nil {
			return fmt.Errorf("write cold header: %w", err)
		}
		if err := c.f.Sync(); err != nil {
			return fmt.Errorf("sync cold header: %w", err)
		}
		c.bytes = coldHdrSize
		return nil
	}

	valid := int64(coldHdrSize)
	runHdr := make([]byte, runHdrSize)
	buf := make([]byte, mergeChunkIDs*coldIDSize)
	for {
		if _, err := c.f.Seek(valid, io.SeekStart); err != nil {
			return fmt.Errorf("seek run header: %w", err)
		}
		if _, err := io.ReadFull(c.f, runHdr); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break // clean end or torn header
			}
			return fmt.Errorf("read run header: %w", err)
		}
		if binary.BigEndian.Uint32(runHdr[0:4]) != runMagic {
			break
		}
		count := binary.BigEndian.Uint32(runHdr[4:8])
		if count == 0 || count > maxRunCount {
			break
		}
		wantCRC := binary.BigEndian.Uint32(runHdr[8:12])
		epoch := int64(binary.BigEndian.Uint64(runHdr[12:20]))
		idsOff := valid + runHdrSize
		remaining := int64(count) * coldIDSize
		crc := crc32.Checksum(runHdr[12:20], castagnoli)
		torn := false
		// Stream the run: verify the CRC and set bloom bits as we go.
		// The bits are harmless if the run turns out torn — bloom
		// over-approximation only costs a disk probe.
		for remaining > 0 {
			chunk := buf
			if remaining < int64(len(chunk)) {
				chunk = chunk[:remaining]
			}
			if _, err := io.ReadFull(c.f, chunk); err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					torn = true
					break
				}
				return fmt.Errorf("read run body: %w", err)
			}
			crc = crc32.Update(crc, castagnoli, chunk)
			for i := 0; i+coldIDSize <= len(chunk); i += coldIDSize {
				c.bloomSetBytes(chunk[i : i+coldIDSize])
			}
			remaining -= int64(len(chunk))
		}
		if torn || crc != wantCRC {
			break
		}
		c.runs = append(c.runs, coldRun{off: idsOff, count: int(count), epoch: epoch})
		c.n += int(count)
		valid = idsOff + int64(count)*coldIDSize
	}
	if valid < size {
		if err := c.f.Truncate(valid); err != nil {
			return fmt.Errorf("truncate torn cold tail: %w", err)
		}
		if err := c.f.Sync(); err != nil {
			return fmt.Errorf("sync truncated cold index: %w", err)
		}
	}
	c.bytes = valid
	return nil
}

// bloom hash positions: the IDs are SHA-256 outputs, so four disjoint
// 8-byte windows are already four independent uniform hashes.
func bloomIdx(b []byte) [4]uint32 {
	return [4]uint32{
		uint32(binary.BigEndian.Uint64(b[0:8]) % coldBloomBits),
		uint32(binary.BigEndian.Uint64(b[8:16]) % coldBloomBits),
		uint32(binary.BigEndian.Uint64(b[16:24]) % coldBloomBits),
		uint32(binary.BigEndian.Uint64(b[24:32]) % coldBloomBits),
	}
}

func (c *ColdIndex) bloomSetBytes(b []byte) {
	for _, i := range bloomIdx(b) {
		c.bloom[i/64] |= 1 << (i % 64)
	}
}

func (c *ColdIndex) bloomMaybe(id hashutil.Hash) bool {
	for _, i := range bloomIdx(id[:]) {
		if c.bloom[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// Contains reports whether id was ever added: bloom filter first (a
// miss is definitive and touches no disk), then a binary search of each
// run, newest first.
func (c *ColdIndex) Contains(id hashutil.Hash) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return false, ErrClosed
	}
	if !c.bloomMaybe(id) {
		return false, nil
	}
	for i := len(c.runs) - 1; i >= 0; i-- {
		ok, err := c.searchRunLocked(c.runs[i], id)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// searchRunLocked binary-searches one sorted run on disk.
func (c *ColdIndex) searchRunLocked(r coldRun, id hashutil.Hash) (bool, error) {
	var cur hashutil.Hash
	lo, hi := 0, r.count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if _, err := c.f.Seek(r.off+int64(mid)*coldIDSize, io.SeekStart); err != nil {
			return false, fmt.Errorf("seek cold run: %w", err)
		}
		if _, err := io.ReadFull(c.f, cur[:]); err != nil {
			return false, fmt.Errorf("read cold run: %w", err)
		}
		switch cmp := cur.Compare(id); {
		case cmp == 0:
			return true, nil
		case cmp < 0:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false, nil
}

// AddBatch durably appends ids as one sorted run stamped with the
// snapshot epoch, then merges runs if the directory has grown past the
// threshold. A failed write or sync poisons the index (reads keep
// working off the previously durable prefix).
func (c *ColdIndex) AddBatch(ids []hashutil.Hash, epoch time.Time) error {
	if len(ids) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return ErrClosed
	}
	if c.err != nil {
		return fmt.Errorf("%w: %v", ErrColdPoisoned, c.err)
	}

	sorted := make([]hashutil.Hash, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })

	buf := make([]byte, runHdrSize+len(sorted)*coldIDSize)
	binary.BigEndian.PutUint32(buf[0:4], runMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(sorted)))
	binary.BigEndian.PutUint64(buf[12:20], uint64(epoch.UnixNano()))
	for i, id := range sorted {
		copy(buf[runHdrSize+i*coldIDSize:], id[:])
	}
	crc := crc32.Checksum(buf[12:20], castagnoli)
	crc = crc32.Update(crc, castagnoli, buf[runHdrSize:])
	binary.BigEndian.PutUint32(buf[8:12], crc)

	if _, err := c.f.Seek(c.bytes, io.SeekStart); err != nil {
		c.err = err
		return fmt.Errorf("seek cold end: %w", err)
	}
	if _, err := c.f.Write(buf); err != nil {
		c.err = err
		return fmt.Errorf("append cold run: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		c.err = err
		return fmt.Errorf("sync cold run: %w", err)
	}
	c.runs = append(c.runs, coldRun{
		off:   c.bytes + runHdrSize,
		count: len(sorted),
		epoch: epoch.UnixNano(),
	})
	c.bytes += int64(len(buf))
	c.n += len(sorted)
	for _, id := range sorted {
		c.bloomSetBytes(id[:])
	}
	if len(c.runs) > maxColdRuns {
		if err := c.mergeLocked(); err != nil {
			// The appended run is durable; a failed merge only leaves
			// more runs than we like. Poison writes, keep reads.
			c.err = err
			return nil
		}
	}
	return nil
}

// runCursor streams one sorted run during a merge with a fixed-size
// window, so merging k runs needs k windows of memory, not the runs.
type runCursor struct {
	c         *ColdIndex
	off       int64 // next unread file offset
	remaining int
	buf       []byte
	pos       int // next unread byte in buf[:fill]
	fill      int
}

func (rc *runCursor) refill() error {
	want := mergeChunkIDs * coldIDSize
	if rem := rc.remaining * coldIDSize; rem < want {
		want = rem
	}
	if want == 0 {
		rc.pos, rc.fill = 0, 0
		return nil
	}
	if _, err := rc.c.f.Seek(rc.off, io.SeekStart); err != nil {
		return fmt.Errorf("seek merge run: %w", err)
	}
	if _, err := io.ReadFull(rc.c.f, rc.buf[:want]); err != nil {
		return fmt.Errorf("read merge run: %w", err)
	}
	rc.off += int64(want)
	rc.pos, rc.fill = 0, want
	return nil
}

// head returns the cursor's current ID without consuming it; ok=false
// when the run is exhausted.
func (rc *runCursor) head() (id []byte, ok bool, err error) {
	if rc.remaining == 0 {
		return nil, false, nil
	}
	if rc.pos == rc.fill {
		if err := rc.refill(); err != nil {
			return nil, false, err
		}
	}
	return rc.buf[rc.pos : rc.pos+coldIDSize], true, nil
}

func (rc *runCursor) advance() {
	rc.pos += coldIDSize
	rc.remaining--
}

// mergeLocked streams every run into one sorted, deduplicated run in a
// temp file, syncs it, and renames it over the live path — the same
// crash-safe commit as Log.Compact. Memory use is constant: one window
// per input run, one output buffer, and the rebuilt bloom filter.
func (c *ColdIndex) mergeLocked() error {
	tmpPath := c.path + ".merge"
	tmp, err := c.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("open cold merge: %w", err)
	}
	fail := func(step string, err error) error {
		tmp.Close()
		_ = c.fs.Remove(tmpPath)
		return fmt.Errorf("%s: %w", step, err)
	}

	var maxEpoch int64
	cursors := make([]*runCursor, len(c.runs))
	for i, r := range c.runs {
		if r.epoch > maxEpoch {
			maxEpoch = r.epoch
		}
		cursors[i] = &runCursor{
			c: c, off: r.off, remaining: r.count,
			buf: make([]byte, mergeChunkIDs*coldIDSize),
		}
	}

	// Header + placeholder run header; count and CRC are patched in
	// after the stream (the file is invisible until the rename, so
	// patching is safe).
	hdr := make([]byte, coldHdrSize+runHdrSize)
	binary.BigEndian.PutUint32(hdr[0:4], coldMagic)
	binary.BigEndian.PutUint32(hdr[4:8], coldVersion)
	if _, err := tmp.Write(hdr); err != nil {
		return fail("write cold merge header", err)
	}

	var epochBytes [8]byte
	binary.BigEndian.PutUint64(epochBytes[:], uint64(maxEpoch))
	crc := crc32.Checksum(epochBytes[:], castagnoli)
	merged := 0
	newBloom := make([]uint64, coldBloomBits/64)
	out := make([]byte, 0, mergeChunkIDs*coldIDSize)
	var last hashutil.Hash
	for {
		// Find the smallest head among the (few) cursors.
		var min []byte
		for _, rc := range cursors {
			h, ok, err := rc.head()
			if err != nil {
				return fail("stream cold merge", err)
			}
			if !ok {
				continue
			}
			if min == nil || bytes.Compare(h, min) < 0 {
				min = h
			}
		}
		if min == nil {
			break
		}
		var id hashutil.Hash
		copy(id[:], min)
		// Consume this ID from every cursor holding it (dedupe).
		for _, rc := range cursors {
			for {
				h, ok, err := rc.head()
				if err != nil {
					return fail("stream cold merge", err)
				}
				if !ok || !bytes.Equal(h, id[:]) {
					break
				}
				rc.advance()
			}
		}
		if merged > 0 && id == last {
			continue
		}
		last = id
		merged++
		out = append(out, id[:]...)
		crc = crc32.Update(crc, castagnoli, id[:])
		for _, i := range bloomIdx(id[:]) {
			newBloom[i/64] |= 1 << (i % 64)
		}
		if len(out) == cap(out) {
			if _, err := tmp.Write(out); err != nil {
				return fail("write cold merge run", err)
			}
			out = out[:0]
		}
	}
	if len(out) > 0 {
		if _, err := tmp.Write(out); err != nil {
			return fail("write cold merge run", err)
		}
	}

	// Patch the real run header in and commit.
	run := hdr[coldHdrSize:]
	binary.BigEndian.PutUint32(run[0:4], runMagic)
	binary.BigEndian.PutUint32(run[4:8], uint32(merged))
	binary.BigEndian.PutUint32(run[8:12], crc)
	binary.BigEndian.PutUint64(run[12:20], uint64(maxEpoch))
	if _, err := tmp.Seek(coldHdrSize, io.SeekStart); err != nil {
		return fail("seek cold merge header", err)
	}
	if _, err := tmp.Write(run); err != nil {
		return fail("patch cold merge header", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync cold merge", err)
	}
	if err := tmp.Close(); err != nil {
		_ = c.fs.Remove(tmpPath)
		return fmt.Errorf("close cold merge: %w", err)
	}
	if err := c.fs.Rename(tmpPath, c.path); err != nil {
		_ = c.fs.Remove(tmpPath)
		return fmt.Errorf("commit cold merge: %w", err)
	}

	f, err := c.fs.OpenFile(c.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("reopen merged cold index: %w", err)
	}
	old := c.f
	c.f = f
	old.Close()
	c.runs = []coldRun{{off: coldHdrSize + runHdrSize, count: merged, epoch: maxEpoch}}
	c.n = merged
	c.bytes = coldHdrSize + runHdrSize + int64(merged)*coldIDSize
	c.bloom = newBloom
	return nil
}

// Len returns the number of IDs on disk (duplicates across unmerged
// runs are counted until a merge dedupes them).
func (c *ColdIndex) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Bytes returns the index's file size.
func (c *ColdIndex) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Runs returns the current run count (monitoring/tests).
func (c *ColdIndex) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// Epoch returns the newest snapshot cutoff recorded in any run (zero
// when the index is empty) — how far the cold region extends, used to
// re-establish the tangle's pruning epoch after a restart.
func (c *ColdIndex) Epoch() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max int64
	for _, r := range c.runs {
		if r.epoch > max {
			max = r.epoch
		}
	}
	if max == 0 {
		return time.Time{}
	}
	return time.Unix(0, max)
}

// Healthy reports whether the index is open and unpoisoned.
func (c *ColdIndex) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f != nil && c.err == nil
}

// Close releases the file handle.
func (c *ColdIndex) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
