package store

import (
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/hashutil"
)

func coldID(i int) hashutil.Hash {
	return hashutil.Sum([]byte(fmt.Sprintf("cold-%d", i)))
}

func coldEpoch(i int) time.Time {
	return time.Unix(1_700_000_000+int64(i)*60, 0)
}

func TestColdIndexAddContains(t *testing.T) {
	fs := chaos.NewMemFS(1)
	c, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var batch []hashutil.Hash
	for i := 0; i < 500; i++ {
		batch = append(batch, coldID(i))
	}
	if err := c.AddBatch(batch, coldEpoch(0)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 500 {
		t.Fatalf("Len = %d, want 500", c.Len())
	}
	for i := 0; i < 500; i++ {
		ok, err := c.Contains(coldID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("id %d missing after add", i)
		}
	}
	// No false negatives is the contract; also spot-check absent IDs
	// resolve correctly through the bloom + disk path.
	for i := 500; i < 1000; i++ {
		ok, err := c.Contains(coldID(i))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("absent id %d reported present", i)
		}
	}
}

func TestColdIndexReopenRecovers(t *testing.T) {
	fs := chaos.NewMemFS(1)
	c, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		var batch []hashutil.Hash
		for i := 0; i < 100; i++ {
			batch = append(batch, coldID(r*100+i))
		}
		if err := c.AddBatch(batch, coldEpoch(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 300 {
		t.Fatalf("reopened Len = %d, want 300", re.Len())
	}
	if got, want := re.Epoch(), coldEpoch(2); !got.Equal(want) {
		t.Fatalf("reopened Epoch = %v, want %v", got, want)
	}
	for i := 0; i < 300; i++ {
		ok, err := re.Contains(coldID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("id %d lost across reopen", i)
		}
	}
}

func TestColdIndexTornTailTruncated(t *testing.T) {
	fs := chaos.NewMemFS(1)
	c, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBatch([]hashutil.Hash{coldID(1), coldID(2)}, coldEpoch(0)); err != nil {
		t.Fatal(err)
	}
	intact := c.Bytes()
	// A second run that tears mid-body: append it, then chop bytes off
	// the end as a crash-before-sync would.
	if err := c.AddBatch([]hashutil.Hash{coldID(3), coldID(4)}, coldEpoch(1)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	f, err := fs.OpenFile("cold.idx", os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(intact + runHdrSize + coldIDSize/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("Len after torn tail = %d, want 2", re.Len())
	}
	if re.Bytes() != intact {
		t.Fatalf("Bytes after torn tail = %d, want %d", re.Bytes(), intact)
	}
	for _, i := range []int{1, 2} {
		if ok, _ := re.Contains(coldID(i)); !ok {
			t.Fatalf("intact id %d lost", i)
		}
	}
	if ok, _ := re.Contains(coldID(3)); ok {
		t.Fatal("torn-run id resurrected")
	}
	// And the index keeps accepting writes after recovery.
	if err := re.AddBatch([]hashutil.Hash{coldID(5)}, coldEpoch(2)); err != nil {
		t.Fatal(err)
	}
	if ok, _ := re.Contains(coldID(5)); !ok {
		t.Fatal("post-recovery add not visible")
	}
}

func TestColdIndexMergeDedupes(t *testing.T) {
	fs := chaos.NewMemFS(1)
	c, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Push past the merge threshold with overlapping runs: every run
	// shares ID 0 with all the others.
	total := 0
	for r := 0; r <= maxColdRuns; r++ {
		batch := []hashutil.Hash{coldID(0)}
		for i := 1; i <= 40; i++ {
			batch = append(batch, coldID(r*1000+i))
		}
		if err := c.AddBatch(batch, coldEpoch(r)); err != nil {
			t.Fatal(err)
		}
		total += 40
	}
	if c.Runs() != 1 {
		t.Fatalf("Runs after merge = %d, want 1", c.Runs())
	}
	if want := total + 1; c.Len() != want {
		t.Fatalf("Len after dedupe merge = %d, want %d", c.Len(), want)
	}
	if got, want := c.Epoch(), coldEpoch(maxColdRuns); !got.Equal(want) {
		t.Fatalf("Epoch after merge = %v, want %v", got, want)
	}
	for r := 0; r <= maxColdRuns; r++ {
		for i := 1; i <= 40; i++ {
			if ok, err := c.Contains(coldID(r*1000 + i)); err != nil || !ok {
				t.Fatalf("id %d/%d lost in merge (ok=%v err=%v)", r, i, ok, err)
			}
		}
	}
	if ok, _ := c.Contains(coldID(0)); !ok {
		t.Fatal("shared id lost in merge")
	}

	// Merged state must survive a reopen byte for byte.
	bytesBefore := c.Bytes()
	c.Close()
	re, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != total+1 || re.Bytes() != bytesBefore || re.Runs() != 1 {
		t.Fatalf("reopen after merge: len=%d bytes=%d runs=%d, want %d/%d/1",
			re.Len(), re.Bytes(), re.Runs(), total+1, bytesBefore)
	}
}

func TestColdIndexWriteFaultPoisons(t *testing.T) {
	fs := chaos.NewMemFS(1)
	c, err := OpenColdIndex(fs, "cold.idx")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddBatch([]hashutil.Hash{coldID(1)}, coldEpoch(0)); err != nil {
		t.Fatal(err)
	}
	fs.InjectWriteError(nil)
	if err := c.AddBatch([]hashutil.Hash{coldID(2)}, coldEpoch(1)); err == nil {
		t.Fatal("faulted AddBatch succeeded")
	}
	if c.Healthy() {
		t.Fatal("index healthy after write fault")
	}
	if err := c.AddBatch([]hashutil.Hash{coldID(3)}, coldEpoch(2)); err == nil {
		t.Fatal("poisoned index accepted a write")
	}
	// Reads keep serving the durable prefix.
	if ok, err := c.Contains(coldID(1)); err != nil || !ok {
		t.Fatalf("durable id unreadable after poison (ok=%v err=%v)", ok, err)
	}
}
