package store

import (
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/txn"
)

// Group commit: the remedy for the one-fsync-per-record write path that
// serialized the whole parallel submission pipeline behind a single
// disk flush. Concurrent appenders enqueue their encoded records; the
// first to find no committer in flight becomes the LEADER and flushes
// the queue with one contiguous write and one Sync. Everyone whose
// record rode in that batch observes the same durability barrier:
// Append (and AppendBatch) return only after the Sync covering their
// bytes succeeded — or with the error that poisoned the log.
//
// The protocol is leader/follower rather than a dedicated committer
// goroutine so an idle log costs nothing and Close has no loop to tear
// down:
//
//  1. An appender locks mu, enqueues its request, and — if a leader is
//     already committing — unlocks and waits on its own done channel.
//  2. Otherwise it marks itself leader, and loops: take up to MaxBatch
//     records from the queue head, release mu (new appenders keep
//     enqueueing while the disk is busy — that is where batches come
//     from), write the concatenated records, Sync once, re-lock, and
//     deliver the verdict to every request in the batch.
//  3. The leader drains until the queue is empty, then steps down.
//
// Failure semantics are unchanged from the per-record path: a failed
// write or Sync poisons the log stickily. Every request in the failing
// batch gets the I/O error; every request still queued behind it gets
// ErrPoisoned; so does every later Append until the log is reopened.
// No waiter is ever told "durable" for a record the post-crash replay
// cannot recover: success is only reported after Sync returns nil, and
// a batch written-but-not-synced is, at worst, a torn tail the next
// Open truncates away.
//
// File I/O (batch commits, compaction's segment rewrite and handle
// swing) serializes on ioMu, acquired strictly before mu; mu alone
// guards the queue and cheap state, and is never held across a disk
// operation.

// DefaultMaxBatch is the records-per-fsync cap when BatchConfig leaves
// MaxBatch zero.
const DefaultMaxBatch = 64

// BatchConfig tunes the group committer.
type BatchConfig struct {
	// MaxBatch caps how many records one fsync covers. Zero selects
	// DefaultMaxBatch; 1 degenerates to the per-record-fsync write path
	// (every record still pays its own Sync — the baseline mode the
	// storebench experiment measures against).
	MaxBatch int
	// MaxDelay is how long a leader with a less-than-full batch lingers
	// before flushing, trading latency for batch size. Zero (the
	// default) flushes immediately: batches then form naturally from
	// whatever queued while the previous flush held the disk, which
	// adds no latency when the log is uncontended.
	MaxDelay time.Duration
}

// withDefaults normalizes the config.
func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	return c
}

// batchHistBuckets is the number of batch-size histogram buckets:
// 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65-128, >128.
const batchHistBuckets = 9

// BatchStats is a snapshot of the group committer's accounting.
type BatchStats struct {
	// Commits is the number of fsyncs the committer issued.
	Commits uint64
	// Records is the number of records those fsyncs made durable.
	Records uint64
	// Hist is the per-fsync batch-size histogram; bucket i counts
	// commits whose record count fell in BatchBucketLabels()[i].
	Hist [batchHistBuckets]uint64
}

// BatchBucketLabels returns the histogram bucket boundaries, aligned
// with BatchStats.Hist.
func BatchBucketLabels() [batchHistBuckets]string {
	return [batchHistBuckets]string{
		"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", ">128",
	}
}

// batchBucket maps a batch's record count to its histogram bucket.
func batchBucket(n int) int {
	if n <= 2 {
		if n < 1 {
			n = 1
		}
		return n - 1
	}
	b := 2
	for limit := 4; b < batchHistBuckets-1; b++ {
		if n <= limit {
			return b
		}
		limit *= 2
	}
	return batchHistBuckets - 1
}

// commitReq is one appender's stake in a batch: its framed bytes, how
// many records they hold, and the channel the barrier verdict arrives
// on.
type commitReq struct {
	buf  []byte
	n    int
	done chan error
}

// SetBatchConfig tunes the group committer; safe to call at any time
// (the next batch observes the new config). The zero value restores
// defaults.
func (l *Log) SetBatchConfig(cfg BatchConfig) {
	cfg = cfg.withDefaults()
	l.mu.Lock()
	l.batchCfg = cfg
	l.mu.Unlock()
}

// BatchStats returns a snapshot of the committer's accounting.
func (l *Log) BatchStats() BatchStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.batchStats
}

// queuedRecordsLocked counts records waiting in the queue. Caller
// holds mu.
func (l *Log) queuedRecordsLocked() int {
	n := 0
	for _, req := range l.queue {
		n += req.n
	}
	return n
}

// takeBatchLocked removes up to MaxBatch records' worth of requests
// from the queue head. A single request larger than MaxBatch still
// commits alone (AppendBatch is atomic at the barrier — it is never
// split). Caller holds mu.
func (l *Log) takeBatchLocked() (batch []*commitReq, records int) {
	maxB := l.batchCfg.MaxBatch
	cut := 0
	for _, req := range l.queue {
		if cut > 0 && records+req.n > maxB {
			break
		}
		records += req.n
		cut++
	}
	batch = l.queue[:cut:cut]
	l.queue = l.queue[cut:]
	return batch, records
}

// failQueueLocked delivers err to every queued request and empties the
// queue. Caller holds mu.
func (l *Log) failQueueLocked(err error) {
	for _, req := range l.queue {
		req.done <- err
	}
	l.queue = nil
}

// submit enqueues one request and sees it through the durability
// barrier, leading the commit loop if no other appender is. It returns
// the verdict for req's own batch.
func (l *Log) submit(req *commitReq) error {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
	l.queue = append(l.queue, req)
	if l.committing {
		l.mu.Unlock()
		return <-req.done // the active leader owns our request now
	}
	l.committing = true
	l.mu.Unlock()

	l.lead()
	return <-req.done
}

// lead runs the commit loop until the queue drains, then steps down.
// The caller must have set l.committing under mu. Every request queued
// while this leader runs is guaranteed a verdict before it steps down.
func (l *Log) lead() {
	for {
		// A leader with a short batch may linger to let followers pile
		// up; with the default MaxDelay of 0 batches form only from the
		// natural enqueue-during-fsync overlap.
		l.mu.Lock()
		delay := l.batchCfg.MaxDelay
		short := l.queuedRecordsLocked() < l.batchCfg.MaxBatch
		l.mu.Unlock()
		if delay > 0 && short {
			time.Sleep(delay)
		}

		l.ioMu.Lock()
		l.mu.Lock()
		if l.err != nil {
			l.failQueueLocked(fmt.Errorf("%w: %v", ErrPoisoned, l.err))
			l.committing = false
			l.mu.Unlock()
			l.ioMu.Unlock()
			return
		}
		if l.f == nil {
			l.failQueueLocked(ErrClosed)
			l.committing = false
			l.mu.Unlock()
			l.ioMu.Unlock()
			return
		}
		batch, records := l.takeBatchLocked()
		f := l.f
		l.mu.Unlock()

		if len(batch) == 0 {
			l.mu.Lock()
			// Re-check under mu: a request may have slipped in between
			// the empty take and here.
			if len(l.queue) == 0 {
				l.committing = false
				l.mu.Unlock()
				l.ioMu.Unlock()
				return
			}
			l.mu.Unlock()
			l.ioMu.Unlock()
			continue
		}

		// One contiguous write, one Sync: the whole batch shares the
		// barrier. A crash in here leaves at most a torn tail — no
		// waiter has been told anything yet.
		buf := batch[0].buf
		if len(batch) > 1 {
			total := 0
			for _, req := range batch {
				total += len(req.buf)
			}
			joined := make([]byte, 0, total)
			for _, req := range batch {
				joined = append(joined, req.buf...)
			}
			buf = joined
		}
		_, err := f.Write(buf)
		if err == nil {
			err = f.Sync()
		}

		l.mu.Lock()
		if err != nil {
			// Sticky poison: the durable tail is unknown. The failing
			// batch gets the I/O error; everything queued behind it is
			// refused before touching the file.
			l.err = err
			for _, req := range batch {
				req.done <- fmt.Errorf("append tx batch: %w", err)
			}
			l.failQueueLocked(fmt.Errorf("%w: %v", ErrPoisoned, err))
			l.committing = false
			l.mu.Unlock()
			l.ioMu.Unlock()
			return
		}
		l.n += records
		l.bytes += int64(len(buf))
		l.batchStats.Commits++
		l.batchStats.Records += uint64(records)
		l.batchStats.Hist[batchBucket(records)]++
		for _, req := range batch {
			req.done <- nil
		}
		more := len(l.queue) > 0
		if !more {
			l.committing = false
		}
		l.mu.Unlock()
		l.ioMu.Unlock()
		if !more {
			return
		}
	}
}

// AppendBatch durably records a group of transactions behind a single
// durability barrier: all of them are framed into one contiguous queue
// entry, written together, and covered by the same fsync (they are
// never split across batches). On success every record is durable; on
// error none should be trusted. An empty batch is a no-op.
//
// The relayed-admission path uses it to journal a whole gossip batch
// with one flush instead of one per record.
func (l *Log) AppendBatch(txs []*txn.Transaction) error {
	if len(txs) == 0 {
		return nil
	}
	var buf []byte
	for _, t := range txs {
		rec, err := encodeRecord(t)
		if err != nil {
			return err
		}
		buf = append(buf, rec...)
	}
	return l.submit(&commitReq{buf: buf, n: len(txs), done: make(chan error, 1)})
}
