package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// gateFS wraps a chaos.FS and blocks every Sync on a gate channel,
// letting tests hold a leader mid-commit while followers pile up.
type gateFS struct {
	chaos.FS
	gate chan struct{} // each Sync receives once before proceeding
}

func (g *gateFS) OpenFile(name string, flag int, perm os.FileMode) (chaos.File, error) {
	f, err := g.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, gate: g.gate}, nil
}

type gateFile struct {
	chaos.File
	gate chan struct{}
}

func (g *gateFile) Sync() error {
	<-g.gate
	return g.File.Sync()
}

// openGated opens a log whose Syncs block on the returned gate. The
// open itself performs one Sync (fresh segment header), which is
// released here.
func openGated(t *testing.T) (*Log, chan struct{}) {
	t.Helper()
	gate := make(chan struct{}, 1)
	gate <- struct{}{} // header sync
	fs := &gateFS{FS: chaos.NewMemFS(1), gate: gate}
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	return l, gate
}

// waitQueued polls until n requests sit in the committer queue.
func waitQueued(t *testing.T, l *Log, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		queued := len(l.queue)
		l.mu.Unlock()
		if queued >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests queued", queued, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGroupCommitCoalesces pins the core of the design: followers that
// enqueue while the leader's fsync is in flight share the next fsync.
// The leader is held at its Sync by a gate; five followers enqueue;
// releasing the gate twice must commit all six records in exactly two
// fsyncs (1 + 5), with every waiter seeing success.
func TestGroupCommitCoalesces(t *testing.T) {
	l, gate := openGated(t)
	defer func() { close(gate); l.Close() }()
	key := mustKey(t)

	const followers = 5
	errsCh := make(chan error, followers+1)
	go func() { errsCh <- l.Append(sampleTx(t, key, "leader")) }()
	// The leader is now (or soon) blocked inside Sync with an empty
	// queue; wait for its request to have left the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		leading := l.committing && len(l.queue) == 0
		l.mu.Unlock()
		if leading {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never reached its commit")
		}
		time.Sleep(100 * time.Microsecond)
	}
	for i := 0; i < followers; i++ {
		i := i
		go func() { errsCh <- l.Append(sampleTx(t, key, fmt.Sprintf("f-%d", i))) }()
	}
	waitQueued(t, l, followers)
	gate <- struct{}{} // leader's batch of 1
	gate <- struct{}{} // followers' batch of 5
	for i := 0; i < followers+1; i++ {
		if err := <-errsCh; err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	stats := l.BatchStats()
	if stats.Commits != 2 {
		t.Fatalf("commits = %d, want 2 (leader alone + coalesced followers)", stats.Commits)
	}
	if stats.Records != followers+1 {
		t.Fatalf("records = %d, want %d", stats.Records, followers+1)
	}
	if stats.Hist[batchBucket(1)] != 1 || stats.Hist[batchBucket(followers)] != 1 {
		t.Fatalf("histogram %v does not show one batch of 1 and one of %d", stats.Hist, followers)
	}
	if l.Len() != followers+1 {
		t.Fatalf("Len = %d, want %d", l.Len(), followers+1)
	}
}

// TestGroupCommitBatchFailureFailsEveryWaiter holds a batch of waiters
// behind a leader, then fails the batch's Sync: every request in the
// failing batch must get the I/O error, every request queued behind it
// ErrPoisoned, and the log must stay stickily poisoned.
func TestGroupCommitBatchFailureFailsEveryWaiter(t *testing.T) {
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	mem := chaos.NewMemFS(2)
	fs := &gateFS{FS: mem, gate: gate}
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(gate); l.Close() }()
	key := mustKey(t)

	const followers = 4
	errsCh := make(chan error, followers+1)
	go func() { errsCh <- l.Append(sampleTx(t, key, "leader")) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		leading := l.committing && len(l.queue) == 0
		l.mu.Unlock()
		if leading {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never reached its commit")
		}
		time.Sleep(100 * time.Microsecond)
	}
	for i := 0; i < followers; i++ {
		i := i
		go func() { errsCh <- l.Append(sampleTx(t, key, fmt.Sprintf("f-%d", i))) }()
	}
	waitQueued(t, l, followers)

	gate <- struct{}{} // leader's own batch of 1 succeeds
	// The leader (who won't return from Append until the queue drains)
	// moves on to the follower batch; once its first commit is on the
	// books, arm the one-shot fault so the follower batch's sync fails.
	deadline = time.Now().Add(5 * time.Second)
	for l.BatchStats().Commits < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader's own batch never committed")
		}
		time.Sleep(100 * time.Microsecond)
	}
	mem.InjectSyncError(nil)
	gate <- struct{}{} // follower batch hits the injected fault

	okCount, failures := 0, 0
	for i := 0; i < followers+1; i++ {
		if err := <-errsCh; err == nil {
			okCount++
		} else {
			failures++
		}
	}
	if okCount != 1 || failures != followers {
		t.Fatalf("%d ok / %d failed, want 1 ok (leader) / %d failed (batch whose sync died)", okCount, failures, followers)
	}
	if l.Healthy() {
		t.Fatal("log still healthy after failed batch sync")
	}
	if err := l.Append(sampleTx(t, key, "after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison = %v, want ErrPoisoned", err)
	}
}

// TestGroupCommitSyncFaultWhileQueued is the satellite scenario: a
// one-shot sync fault fires while concurrent appenders have requests
// queued. Afterwards the machine reboots (dropping the page cache) and
// the log replays: every Append that reported success must be
// recovered — no waiter may have been told "durable" on the strength
// of a sync that never happened.
func TestGroupCommitSyncFaultWhileQueued(t *testing.T) {
	seed := tortureSeed(t)
	for round := 0; round < 8; round++ {
		fs := chaos.NewMemFS(seed + int64(round))
		l, err := OpenFS(fs, "tx.log", nil)
		if err != nil {
			t.Fatal(err)
		}
		key := mustKey(t)

		const writers = 6
		const perWriter = 4
		var (
			okMu sync.Mutex
			ok   = make(map[hashutil.Hash]bool)
		)
		var wg sync.WaitGroup
		var once sync.Once
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					tx := sampleTx(t, key, fmt.Sprintf("r%d-w%d-i%d", round, w, i))
					if i == 1 && w == 0 {
						// Arm the fault mid-flight, with batches queued.
						once.Do(func() { fs.InjectSyncError(nil) })
					}
					if err := l.Append(tx); err == nil {
						okMu.Lock()
						ok[tx.ID()] = true
						okMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		l.Close()

		fs.Reboot()
		recovered := make(map[hashutil.Hash]bool)
		l2, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
			recovered[tx.ID()] = true
			return nil
		})
		if err != nil {
			t.Fatalf("seed=%d round=%d: recovery failed: %v", seed, round, err)
		}
		l2.Close()
		for id := range ok {
			if !recovered[id] {
				t.Fatalf("seed=%d round=%d: Append reported success for %s but replay lost it (%d ok, %d recovered)",
					seed, round, id.String()[:8], len(ok), len(recovered))
			}
		}
	}
}

// TestCrashMidBatchConcurrent sweeps the crash point across a
// concurrent batched workload: the disk dies during the k-th durable
// operation while several goroutines append, the machine reboots, and
// the log replays. The invariant is the soak's zero-admitted-loss rule
// at the store layer: a crash mid-batch may tear records that were
// never acknowledged, but every Append that returned nil is recovered.
func TestCrashMidBatchConcurrent(t *testing.T) {
	seed := tortureSeed(t)
	key := mustKey(t)
	const writers = 4
	const perWriter = 5
	for crash := 1; crash <= 36; crash++ {
		fs := chaos.NewMemFS(seed + int64(crash)*101)
		l, err := OpenFS(fs, "tx.log", nil)
		if err != nil {
			t.Fatal(err)
		}
		l.SetBatchConfig(BatchConfig{MaxBatch: 8})
		fs.CrashAfter(crash)

		var (
			okMu sync.Mutex
			ok   = make(map[hashutil.Hash]bool)
		)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					tx := sampleTx(t, key, fmt.Sprintf("c%d-w%d-i%d", crash, w, i))
					if err := l.Append(tx); err == nil {
						okMu.Lock()
						ok[tx.ID()] = true
						okMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		l.Close()
		if !fs.Crashed() {
			continue // workload finished before this crash point
		}
		fs.Reboot()

		recovered := make(map[hashutil.Hash]bool)
		l2, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
			recovered[tx.ID()] = true
			return nil
		})
		if err != nil {
			if errors.Is(err, os.ErrNotExist) && len(ok) == 0 {
				continue // crashed before the file existed
			}
			t.Fatalf("seed=%d crash=%d: recovery failed: %v", seed, crash, err)
		}
		l2.Close()
		for id := range ok {
			if !recovered[id] {
				t.Fatalf("seed=%d crash=%d: acknowledged record %s lost by replay (%d ok, %d recovered)",
					seed, crash, id.String()[:8], len(ok), len(recovered))
			}
		}
	}
}

// TestAppendBatchRoundTrip exercises the atomic multi-record append:
// records land in order, share one fsync, and replay together.
func TestAppendBatchRoundTrip(t *testing.T) {
	fs := chaos.NewMemFS(3)
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t)
	var want []hashutil.Hash
	var batch []*txn.Transaction
	for i := 0; i < 5; i++ {
		tx := sampleTx(t, key, fmt.Sprintf("b-%d", i))
		batch = append(batch, tx)
		want = append(want, tx.ID())
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	stats := l.BatchStats()
	if stats.Commits != 1 || stats.Records != 5 {
		t.Fatalf("stats = %+v, want 1 commit of 5 records", stats)
	}
	l.Close()

	var got []hashutil.Hash
	l2, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
		got = append(got, tx.ID())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d out of order", i)
		}
	}
}

// TestCrashPointTortureBatched is the group-commit analogue of
// TestCrashPointTorture: a deterministic single-goroutine workload of
// AppendBatch calls (sizes 1, 3, 5) with the crash point enumerated
// over every durable-affecting operation. After each crash the
// recovered log must be an in-order prefix of the record stream, and
// every batch whose AppendBatch returned nil must be fully present — a
// crash between a batch's write and its sync must never admit an
// unsynced record as durable.
func TestCrashPointTortureBatched(t *testing.T) {
	seed := tortureSeed(t)
	key := mustKey(t)
	sizes := []int{1, 3, 5, 2}
	var batches [][]*txn.Transaction
	var stream []hashutil.Hash
	for bi, n := range sizes {
		var b []*txn.Transaction
		for i := 0; i < n; i++ {
			tx := sampleTx(t, key, fmt.Sprintf("tb-%d-%d", bi, i))
			b = append(b, tx)
			stream = append(stream, tx.ID())
		}
		batches = append(batches, b)
	}

	workload := func(fs *chaos.MemFS) (mustHave []hashutil.Hash) {
		l, err := OpenFS(fs, "tx.log", nil)
		if err != nil {
			return nil
		}
		defer l.Close()
		for _, b := range batches {
			if err := l.AppendBatch(b); err != nil {
				return mustHave
			}
			for _, tx := range b {
				mustHave = append(mustHave, tx.ID())
			}
		}
		return mustHave
	}

	dry := chaos.NewMemFS(seed)
	if got := workload(dry); len(got) != len(stream) {
		t.Fatalf("dry run committed %d records, want %d", len(got), len(stream))
	}
	total := dry.Ops()
	if total < len(sizes)*2 {
		t.Fatalf("suspiciously few ops: %d", total)
	}

	isPrefix := func(p, s []hashutil.Hash) bool {
		if len(p) > len(s) {
			return false
		}
		for i := range p {
			if p[i] != s[i] {
				return false
			}
		}
		return true
	}

	for crash := 1; crash <= total; crash++ {
		fs := chaos.NewMemFS(seed + int64(crash))
		fs.CrashAfter(crash)
		mustHave := workload(fs)
		if !fs.Crashed() {
			t.Fatalf("seed=%d crash=%d: workload survived its crash point", seed, crash)
		}
		fs.Reboot()

		var recovered []hashutil.Hash
		l, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
			recovered = append(recovered, tx.ID())
			return nil
		})
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				if len(mustHave) > 0 {
					t.Fatalf("seed=%d crash=%d: log vanished with %d durable records", seed, crash, len(mustHave))
				}
				continue
			}
			t.Fatalf("seed=%d crash=%d: recovery failed: %v", seed, crash, err)
		}
		l.Close()
		if !isPrefix(recovered, stream) {
			t.Fatalf("seed=%d crash=%d: recovered %d records are not a stream prefix", seed, crash, len(recovered))
		}
		if !isPrefix(mustHave, recovered) {
			t.Fatalf("seed=%d crash=%d: lost acknowledged batch records: recovered %d, %d acknowledged",
				seed, crash, len(recovered), len(mustHave))
		}
	}
}

// TestGroupCommitConcurrentWithCompact races appenders against a
// compaction: every Append that succeeds must be recoverable, whether
// it landed in the old segment (and was carried into the compacted
// one) or in the new segment after the rename.
func TestGroupCommitConcurrentWithCompact(t *testing.T) {
	fs := chaos.NewMemFS(4)
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t)

	// Seed records that compaction will keep.
	var kept []*txn.Transaction
	for i := 0; i < 3; i++ {
		tx := sampleTx(t, key, fmt.Sprintf("keep-%d", i))
		kept = append(kept, tx)
		if err := l.Append(tx); err != nil {
			t.Fatal(err)
		}
	}

	var (
		okMu sync.Mutex
		ok   []hashutil.Hash
	)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				tx := sampleTx(t, key, fmt.Sprintf("cc-%d-%d", w, i))
				if err := l.Append(tx); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				okMu.Lock()
				ok = append(ok, tx.ID())
				okMu.Unlock()
			}
		}()
	}
	if err := l.Compact(kept); err != nil {
		t.Fatalf("compact: %v", err)
	}
	wg.Wait()
	l.Close()

	recovered := make(map[hashutil.Hash]bool)
	l2, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
		recovered[tx.ID()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if gen := l2.Generation(); gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	// Appends that raced the compaction and lost their segment are the
	// one acceptable casualty ONLY if they were never acknowledged; all
	// of ours were acknowledged, so all must survive. Records written
	// to the pre-compact segment survive via the compaction input in
	// real usage (the node exports its tangle); here the compaction
	// kept only `kept`, so acknowledged pre-rename appends not in
	// `kept` would be lost — the ioMu ordering prevents exactly that
	// interleaving: a batch either commits wholly before the rename
	// (and the test's compact input predates the appenders, making
	// this a strict check on post-rename routing) or wholly after,
	// into the new segment.
	for _, id := range ok {
		if !recovered[id] {
			t.Fatalf("acknowledged append %s lost across concurrent compaction", id.String()[:8])
		}
	}
}
