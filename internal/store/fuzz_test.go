package store

import (
	"encoding/binary"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// fuzzLogBytes builds one valid v2 segment with n records, as mutation
// fodder for the fuzz corpus.
func fuzzLogBytes(n int) []byte {
	key, err := identity.Generate()
	if err != nil {
		panic(err)
	}
	out := make([]byte, segHeaderSize)
	putSegHeader(out, 0)
	for i := 0; i < n; i++ {
		tx := &txn.Transaction{
			Trunk:     hashutil.Sum([]byte("t")),
			Branch:    hashutil.Sum([]byte("b")),
			Timestamp: time.Unix(int64(i+1), 0),
			Kind:      txn.KindData,
			Payload:   []byte{byte(i)},
			Nonce:     uint64(i),
		}
		tx.Sign(key)
		rec, err := encodeRecord(tx)
		if err != nil {
			panic(err)
		}
		out = append(out, rec...)
	}
	return out
}

// fuzzBatchedLogBytes produces a segment through the real group-commit
// write path (AppendBatch + concurrent-shaped batches), so the corpus
// mutates bytes laid down exactly as a batching leader writes them.
func fuzzBatchedLogBytes() []byte {
	key, err := identity.Generate()
	if err != nil {
		panic(err)
	}
	fs := chaos.NewMemFS(7)
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		panic(err)
	}
	for bi, n := range []int{1, 3, 2} {
		var batch []*txn.Transaction
		for i := 0; i < n; i++ {
			tx := &txn.Transaction{
				Trunk:     hashutil.Sum([]byte("t")),
				Branch:    hashutil.Sum([]byte("b")),
				Timestamp: time.Unix(int64(bi*10+i+1), 0),
				Kind:      txn.KindData,
				Payload:   []byte{byte(bi), byte(i)},
				Nonce:     uint64(i),
			}
			tx.Sign(key)
			batch = append(batch, tx)
		}
		if err := l.AppendBatch(batch); err != nil {
			panic(err)
		}
	}
	l.Close()
	data, err := fs.ReadFile("tx.log")
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzReplay feeds arbitrary bytes to the recovery path. Whatever the
// mutation — truncations, bit flips, forged headers, length-field
// attacks — replay must never panic and never admit a record whose
// bytes don't round-trip the CRC'd encoding (apply only sees records
// that passed magic+length+CRC+decode).
func FuzzReplay(f *testing.F) {
	valid := fuzzLogBytes(3)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-7])              // torn tail
	f.Add(valid[:segHeaderSize])             // header only
	f.Add(valid[segHeaderSize:])             // legacy v1 shape
	f.Add(valid[:9])                         // torn segment header
	flipped := append([]byte(nil), valid...) // corrupt body byte
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	huge := append([]byte(nil), valid...) // length-field attack
	binary.BigEndian.PutUint32(huge[segHeaderSize+4:], 0xFFFFFFF0)
	f.Add(huge)
	batched := fuzzBatchedLogBytes() // group-commit write shapes
	f.Add(batched)
	f.Add(batched[:len(batched)-11]) // crash mid-batch: torn batch tail

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := chaos.NewMemFS(1)
		fs.WriteFile("tx.log", data)
		applied := 0
		l, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
			// Every admitted record must be a well-formed transaction
			// whose canonical encoding frames back into a valid record.
			if _, rerr := encodeRecord(tx); rerr != nil {
				t.Fatalf("admitted unencodable record: %v", rerr)
			}
			applied++
			return nil
		})
		if err != nil {
			return // rejecting a mutated log is fine; panicking is not
		}
		if l.Len() != applied {
			t.Fatalf("Len=%d but applied %d", l.Len(), applied)
		}
		// The survivor must accept appends: recovery leaves a live log.
		tx := &txn.Transaction{
			Trunk:     hashutil.Sum([]byte("t")),
			Branch:    hashutil.Sum([]byte("b")),
			Timestamp: time.Unix(99, 0),
			Kind:      txn.KindData,
			Payload:   []byte("probe"),
			Nonce:     1,
		}
		if err := l.Append(tx); err != nil {
			t.Fatalf("recovered log rejects append: %v", err)
		}
		l.Close()
	})
}
