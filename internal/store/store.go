// Package store provides durable storage for a full node's ledger: an
// append-only, checksummed write-ahead log of canonical transaction
// encodings, replayed in attachment order at startup.
//
// The paper lists "storage limitations" among its open problems (§VIII);
// this package addresses the durability half (a gateway restart must not
// lose the tangle) and pairs with the credit ledger's Prune for the
// growth half.
//
// Segment format (v2): a fixed header followed by records.
//
//	magic      uint32 = 0xB10C5E67
//	version    uint32 = 2
//	generation uint64 (big endian) — incremented by each compaction
//
// Record format (unchanged from v1):
//
//	magic  uint32 = 0xB10C0DE5
//	length uint32 (big endian)   — length of data
//	crc32  uint32 (Castagnoli)   — over data
//	data   []byte                — txn.Encode() bytes
//
// A v1 log (file beginning with a record magic, no segment header) still
// opens — it reads as generation 0 and is upgraded to a v2 segment by the
// first Compact.
//
// Torn tails (a crash mid-append) are detected via magic/length/CRC and
// truncated away on open — and the truncation is synced, so a recovered
// log does not resurrect its tear on the next crash. Everything before
// the tear replays.
//
// Failure semantics: a failed write or sync POISONS the log. Every later
// Append fails with ErrPoisoned until the log is reopened, because after
// a failed fsync the kernel may have dropped the dirty pages — the tail
// is in an unknown state, and appending past it would silently diverge
// from what a post-crash replay will see. A poisoned node must re-open
// (re-replaying the durable prefix) before trusting the journal again.
//
// All file I/O goes through a chaos.FS so the crash-point torture suite
// can script torn writes, fsync errors, and mid-compaction crashes
// against the real code paths. Production callers use chaos.OS().
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/txn"
)

const (
	segMagic      uint32 = 0xB10C5E67
	segVersion    uint32 = 2
	segHeaderSize        = 16

	recordMagic  uint32 = 0xB10C0DE5
	headerSize          = 12
	maxRecordLen        = txn.MaxPayloadSize + 4096 // payload + envelope slack
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecoveryStats describes what Open recovered from disk.
type RecoveryStats struct {
	// Records is the number of intact records replayed.
	Records int
	// Generation is the segment generation (0 for legacy v1 logs and
	// fresh logs; +1 per compaction).
	Generation uint64
	// TornBytes is the size of the torn tail truncated away on open.
	TornBytes int64
	// LegacyV1 reports the file predated segment headers.
	LegacyV1 bool
}

// Log is an append-only transaction log. Safe for concurrent use:
// concurrent Appends coalesce through the group committer (commit.go)
// so many writers share one fsync.
type Log struct {
	// ioMu serializes file I/O — batch commits and compaction — and is
	// always acquired before mu. mu guards the cheap state below and is
	// never held across a disk operation.
	ioMu sync.Mutex

	mu    sync.Mutex
	fs    chaos.FS
	f     chaos.File
	path  string
	n     int    // records written (including replayed)
	bytes int64  // durable segment size: header + intact records
	gen   uint64 // segment generation
	err   error  // sticky poison; non-nil after a failed write/sync
	stats RecoveryStats

	// Group-commit state (see commit.go).
	batchCfg   BatchConfig
	batchStats BatchStats
	queue      []*commitReq
	committing bool // a leader is flushing the queue
}

// Errors.
var (
	ErrClosed      = errors.New("transaction log closed")
	ErrCorruptLog  = errors.New("transaction log corrupt")
	ErrRecordLarge = errors.New("transaction record exceeds maximum size")
	// ErrPoisoned reports an append against a log whose backing file
	// failed a write or sync. The durable tail is unknown; the log
	// refuses all writes until reopened.
	ErrPoisoned = errors.New("transaction log poisoned by earlier I/O failure")
)

// Open opens (creating if needed) the log at path on the real
// filesystem. See OpenFS.
func Open(path string, apply func(*txn.Transaction) error) (*Log, error) {
	return OpenFS(chaos.OS(), path, apply)
}

// OpenFS opens (creating if needed) the log at path on fs, replays every
// intact record through apply in order, truncates (and syncs) any torn
// tail, and leaves the log ready for appends. apply errors abort the
// open (a record that no longer applies indicates a foreign or corrupt
// log).
func OpenFS(fs chaos.FS, path string, apply func(*txn.Transaction) error) (*Log, error) {
	if apply == nil {
		return OpenFSGen(fs, path, nil)
	}
	return OpenFSGen(fs, path, func(t *txn.Transaction, _ uint64) error { return apply(t) })
}

// OpenFSGen is OpenFS with a generation-aware apply callback: gen is the
// segment generation being replayed — 0 for fresh and legacy v1 logs,
// >0 once compaction has rewritten the segment. Replay of a compacted
// segment is the one situation where a record's parents may legitimately
// be absent (they sat beyond the snapshot boundary), and callers use gen
// to relax parent resolution exactly then and no wider.
func OpenFSGen(fs chaos.FS, path string, apply func(*txn.Transaction, uint64) error) (*Log, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open tx log: %w", err)
	}
	l := &Log{fs: fs, f: f, path: path, batchCfg: BatchConfig{}.withDefaults()}

	base, size, err := l.readSegHeader()
	if err != nil {
		f.Close()
		return nil, err
	}
	validLen, count, err := l.replay(base, apply)
	if err != nil {
		f.Close()
		return nil, err
	}
	if validLen < size {
		// Cut the torn tail and make the cut durable: without the sync,
		// a crash after appending over the tear could splice old torn
		// bytes into a new record.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sync truncated log: %w", err)
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("seek log end: %w", err)
	}
	l.n = count
	l.bytes = validLen
	l.stats = RecoveryStats{
		Records:    count,
		Generation: l.gen,
		TornBytes:  size - validLen,
		LegacyV1:   base == 0 && size > 0,
	}
	return l, nil
}

// readSegHeader classifies the file start: v2 segment header, legacy v1
// record stream, or empty/torn (in which case a fresh v2 header is
// written and synced). It returns the offset records start at and the
// current file size.
func (l *Log) readSegHeader() (base int64, size int64, err error) {
	size, err = l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, fmt.Errorf("size tx log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("seek log start: %w", err)
	}
	hdr := make([]byte, segHeaderSize)
	if size >= 4 {
		if _, err := io.ReadFull(l.f, hdr[:4]); err != nil {
			return 0, 0, fmt.Errorf("read segment magic: %w", err)
		}
		switch binary.BigEndian.Uint32(hdr[:4]) {
		case recordMagic:
			// Legacy v1: headerless record stream, generation 0.
			l.gen = 0
			return 0, size, nil
		case segMagic:
			if size >= segHeaderSize {
				if _, err := io.ReadFull(l.f, hdr[4:]); err != nil {
					return 0, 0, fmt.Errorf("read segment header: %w", err)
				}
				if v := binary.BigEndian.Uint32(hdr[4:8]); v != segVersion {
					return 0, 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorruptLog, v)
				}
				l.gen = binary.BigEndian.Uint64(hdr[8:16])
				return segHeaderSize, size, nil
			}
			// Torn mid-header: the header write never synced, so no
			// record can have synced either. Start fresh below.
		default:
			// Unrecognized bytes: same treatment v1 gave a garbage
			// prefix — an unusable tear, truncated away.
		}
	}
	// Empty, torn-header, or garbage-prefix file: write a fresh v2
	// header, durably, before any record lands after it.
	if err := l.f.Truncate(0); err != nil {
		return 0, 0, fmt.Errorf("reset tx log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("seek log start: %w", err)
	}
	putSegHeader(hdr, 0)
	if _, err := l.f.Write(hdr); err != nil {
		return 0, 0, fmt.Errorf("write segment header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("sync segment header: %w", err)
	}
	l.gen = 0
	return segHeaderSize, segHeaderSize, nil
}

func putSegHeader(b []byte, gen uint64) {
	binary.BigEndian.PutUint32(b[0:4], segMagic)
	binary.BigEndian.PutUint32(b[4:8], segVersion)
	binary.BigEndian.PutUint64(b[8:16], gen)
}

// replay reads records from base, calling apply for each intact one. It
// returns the byte offset of the last intact record's end.
func (l *Log) replay(base int64, apply func(*txn.Transaction, uint64) error) (validLen int64, count int, err error) {
	if _, err := l.f.Seek(base, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("seek records start: %w", err)
	}
	offset := base
	header := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(l.f, header); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, count, nil // clean end or torn header
			}
			return 0, 0, fmt.Errorf("read record header: %w", err)
		}
		if binary.BigEndian.Uint32(header[0:4]) != recordMagic {
			return offset, count, nil // tear or garbage: stop here
		}
		length := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordLen {
			return offset, count, nil
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(l.f, data); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, count, nil // torn body
			}
			return 0, 0, fmt.Errorf("read record body: %w", err)
		}
		if crc32.Checksum(data, castagnoli) != binary.BigEndian.Uint32(header[8:12]) {
			return offset, count, nil // corrupt record: treat as tear
		}
		t, err := txn.Decode(data)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: undecodable record at %d: %v",
				ErrCorruptLog, offset, err)
		}
		if apply != nil {
			if err := apply(t, l.gen); err != nil {
				return 0, 0, fmt.Errorf("replay record at %d: %w", offset, err)
			}
		}
		offset += headerSize + int64(length)
		count++
	}
}

// encodeRecord frames one transaction.
func encodeRecord(t *txn.Transaction) ([]byte, error) {
	data := t.Encode()
	if len(data) > maxRecordLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordLarge, len(data))
	}
	buf := make([]byte, headerSize+len(data))
	binary.BigEndian.PutUint32(buf[0:4], recordMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(data)))
	binary.BigEndian.PutUint32(buf[8:12], crc32.Checksum(data, castagnoli))
	copy(buf[headerSize:], data)
	return buf, nil
}

// Append durably records a transaction. The record is synced to stable
// storage before Append returns — concurrent Appends ride the same
// group-commit barrier (commit.go), so the fsync cost amortizes over
// however many records queued while the disk was busy. A failed write
// or sync poisons the log: the durable tail is unknown, so every
// subsequent Append fails with ErrPoisoned until the log is reopened.
func (l *Log) Append(t *txn.Transaction) error {
	buf, err := encodeRecord(t)
	if err != nil {
		return err
	}
	return l.submit(&commitReq{buf: buf, n: 1, done: make(chan error, 1)})
}

// Compact atomically replaces the log's contents with txs, stamped with
// the next generation. The replacement is written to a temp segment,
// synced, then renamed over the live path — a crash at any point leaves
// either the complete old segment or the complete new one. On success
// the log continues appending to the new segment.
//
// A poisoned log refuses to compact: the caller's in-memory state may
// already have diverged from the durable log, and compaction would make
// that divergence permanent.
func (l *Log) Compact(txs []*txn.Transaction) error {
	// ioMu keeps the rewrite exclusive with in-flight batch commits;
	// appenders may keep enqueueing — their leader blocks on ioMu and
	// commits to the new segment once the rename lands.
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
	gen := l.gen
	l.mu.Unlock()

	tmpPath := l.path + ".compact"
	tmp, err := l.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("open compact segment: %w", err)
	}
	fail := func(step string, err error) error {
		tmp.Close()
		_ = l.fs.Remove(tmpPath)
		return fmt.Errorf("%s: %w", step, err)
	}
	hdr := make([]byte, segHeaderSize)
	putSegHeader(hdr, gen+1)
	if _, err := tmp.Write(hdr); err != nil {
		return fail("write compact header", err)
	}
	written := int64(segHeaderSize)
	for _, t := range txs {
		buf, err := encodeRecord(t)
		if err != nil {
			return fail("encode compact record", err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return fail("write compact record", err)
		}
		written += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync compact segment", err)
	}
	if err := tmp.Close(); err != nil {
		_ = l.fs.Remove(tmpPath)
		return fmt.Errorf("close compact segment: %w", err)
	}
	// The commit point. Before: the old segment is intact. After: the
	// new one is, fully synced.
	if err := l.fs.Rename(tmpPath, l.path); err != nil {
		_ = l.fs.Remove(tmpPath)
		return fmt.Errorf("commit compact segment: %w", err)
	}

	// Swing the live handle onto the new segment. The old handle now
	// points at an unlinked file; appends through it would be lost.
	f, err := l.fs.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.mu.Lock()
		l.err = err // committed on disk but no usable handle: fail loudly
		l.mu.Unlock()
		return fmt.Errorf("reopen compacted log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		l.mu.Lock()
		l.err = err
		l.mu.Unlock()
		return fmt.Errorf("seek compacted log end: %w", err)
	}
	l.mu.Lock()
	old := l.f
	l.f = f
	l.gen = gen + 1
	l.n = len(txs)
	l.bytes = written
	l.mu.Unlock()
	old.Close()
	return nil
}

// Healthy reports whether the log is open and unpoisoned.
func (l *Log) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f != nil && l.err == nil
}

// Err returns the sticky I/O error that poisoned the log, or nil.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Generation returns the current segment generation.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Stats returns what Open recovered from disk.
func (l *Log) Stats() RecoveryStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Len returns the number of records in the log (replayed + appended).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Bytes returns the durable size of the current segment in bytes
// (header plus every committed record) — the journal's disk footprint,
// maintained without a stat call so monitoring can poll it freely.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the file handle. It waits for the in-flight batch
// commit (if any) to reach its barrier first, so no appender has its
// file yanked away mid-write; requests still queued behind that batch
// fail with ErrClosed.
func (l *Log) Close() error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
