// Package store provides durable storage for a full node's ledger: an
// append-only, checksummed write-ahead log of canonical transaction
// encodings, replayed in attachment order at startup.
//
// The paper lists "storage limitations" among its open problems (§VIII);
// this package addresses the durability half (a gateway restart must not
// lose the tangle) and pairs with the credit ledger's Prune for the
// growth half.
//
// Log format, per record:
//
//	magic  uint32 = 0xB10C0DE5
//	length uint32 (big endian)   — length of data
//	crc32  uint32 (Castagnoli)   — over data
//	data   []byte                — txn.Encode() bytes
//
// Torn tails (a crash mid-append) are detected via magic/length/CRC and
// truncated away on open; everything before the tear replays.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"github.com/b-iot/biot/internal/txn"
)

const (
	recordMagic  uint32 = 0xB10C0DE5
	headerSize          = 12
	maxRecordLen        = txn.MaxPayloadSize + 4096 // payload + envelope slack
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only transaction log. Safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	n    int // records written (including replayed)
}

// Errors.
var (
	ErrClosed      = errors.New("transaction log closed")
	ErrCorruptLog  = errors.New("transaction log corrupt")
	ErrRecordLarge = errors.New("transaction record exceeds maximum size")
)

// Open opens (creating if needed) the log at path, replays every intact
// record through apply in order, truncates any torn tail, and leaves the
// log ready for appends. apply errors abort the open (a record that no
// longer applies indicates a foreign or corrupt log).
func Open(path string, apply func(*txn.Transaction) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open tx log: %w", err)
	}
	l := &Log{f: f, path: path}

	validLen, count, err := l.replay(apply)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("seek log end: %w", err)
	}
	l.n = count
	return l, nil
}

// replay reads records from the start, calling apply for each intact
// one. It returns the byte offset of the last intact record's end.
func (l *Log) replay(apply func(*txn.Transaction) error) (validLen int64, count int, err error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("seek log start: %w", err)
	}
	var offset int64
	header := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(l.f, header); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, count, nil // clean end or torn header
			}
			return 0, 0, fmt.Errorf("read record header: %w", err)
		}
		if binary.BigEndian.Uint32(header[0:4]) != recordMagic {
			return offset, count, nil // tear or garbage: stop here
		}
		length := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordLen {
			return offset, count, nil
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(l.f, data); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, count, nil // torn body
			}
			return 0, 0, fmt.Errorf("read record body: %w", err)
		}
		if crc32.Checksum(data, castagnoli) != binary.BigEndian.Uint32(header[8:12]) {
			return offset, count, nil // corrupt record: treat as tear
		}
		t, err := txn.Decode(data)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: undecodable record at %d: %v",
				ErrCorruptLog, offset, err)
		}
		if apply != nil {
			if err := apply(t); err != nil {
				return 0, 0, fmt.Errorf("replay record at %d: %w", offset, err)
			}
		}
		offset += headerSize + int64(length)
		count++
	}
}

// Append durably records a transaction. The record is synced to stable
// storage before Append returns.
func (l *Log) Append(t *txn.Transaction) error {
	data := t.Encode()
	if len(data) > maxRecordLen {
		return fmt.Errorf("%w: %d bytes", ErrRecordLarge, len(data))
	}
	buf := make([]byte, headerSize+len(data))
	binary.BigEndian.PutUint32(buf[0:4], recordMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(data)))
	binary.BigEndian.PutUint32(buf[8:12], crc32.Checksum(data, castagnoli))
	copy(buf[headerSize:], data)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("append tx record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("sync tx log: %w", err)
	}
	l.n++
	return nil
}

// Len returns the number of records in the log (replayed + appended).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the file handle.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
