package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

func mustKey(t *testing.T) *identity.KeyPair {
	t.Helper()
	k, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sampleTx(t *testing.T, key *identity.KeyPair, tag string) *txn.Transaction {
	t.Helper()
	tx := &txn.Transaction{
		Trunk:     hashutil.Sum([]byte("t")),
		Branch:    hashutil.Sum([]byte("b")),
		Timestamp: time.Unix(1, 0),
		Kind:      txn.KindData,
		Payload:   []byte(tag),
		Nonce:     7,
	}
	tx.Sign(key)
	return tx
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tx.log")
	key := mustKey(t)

	log1, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []hashutil.Hash
	for i := 0; i < 10; i++ {
		tx := sampleTx(t, key, string(rune('a'+i)))
		want = append(want, tx.ID())
		if err := log1.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	if log1.Len() != 10 {
		t.Errorf("len = %d", log1.Len())
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	var got []hashutil.Hash
	log2, err := Open(path, func(tx *txn.Transaction) error {
		got = append(got, tx.ID())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d out of order", i)
		}
	}
	if log2.Len() != 10 {
		t.Errorf("reopened len = %d", log2.Len())
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.log")
	key := mustKey(t)
	log1, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := log1.Append(sampleTx(t, key, "one")); err != nil {
		t.Fatal(err)
	}
	log1.Close()

	log2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := log2.Append(sampleTx(t, key, "two")); err != nil {
		t.Fatal(err)
	}
	log2.Close()

	count := 0
	log3, err := Open(path, func(*txn.Transaction) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if count != 2 {
		t.Errorf("records = %d, want 2", count)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.log")
	key := mustKey(t)
	log1, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := log1.Append(sampleTx(t, key, string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	log1.Close()

	// Simulate a crash mid-append: garbage tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xB1, 0x0C, 0x0D}); err != nil { // partial magic
		t.Fatal(err)
	}
	f.Close()

	count := 0
	log2, err := Open(path, func(*txn.Transaction) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("replayed %d, want 3", count)
	}
	// The tail was truncated: appends go to a clean end and survive a
	// further reopen.
	if err := log2.Append(sampleTx(t, key, "post-tear")); err != nil {
		t.Fatal(err)
	}
	log2.Close()
	count = 0
	log3, err := Open(path, func(*txn.Transaction) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	log3.Close()
	if count != 4 {
		t.Errorf("after tear repair: %d records, want 4", count)
	}
}

func TestCorruptRecordTreatedAsTear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.log")
	key := mustKey(t)
	log1, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := log1.Append(sampleTx(t, key, "good")); err != nil {
		t.Fatal(err)
	}
	if err := log1.Append(sampleTx(t, key, "will corrupt")); err != nil {
		t.Fatal(err)
	}
	log1.Close()

	// Flip a byte in the second record's body (the very last byte of
	// the file is inside it).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	count := 0
	log2, err := Open(path, func(*txn.Transaction) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if count != 1 {
		t.Errorf("replayed %d, want only the intact record", count)
	}
}

func TestReplayApplyErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.log")
	key := mustKey(t)
	log1, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := log1.Append(sampleTx(t, key, "x")); err != nil {
		t.Fatal(err)
	}
	log1.Close()

	wantErr := errors.New("apply failed")
	if _, err := Open(path, func(*txn.Transaction) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.log")
	log1, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	log1.Close()
	if err := log1.Append(sampleTx(t, mustKey(t), "late")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	if err := log1.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.log")
	count := 0
	l, err := Open(path, func(*txn.Transaction) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if count != 0 || l.Len() != 0 {
		t.Error("empty log replayed records")
	}
	if l.Path() != path {
		t.Error("path accessor wrong")
	}
}
