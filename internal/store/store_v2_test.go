package store

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/txn"
)

func TestPoisonOnFailedSync(t *testing.T) {
	fs := chaos.NewMemFS(1)
	key := mustKey(t)
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleTx(t, key, "good")); err != nil {
		t.Fatal(err)
	}
	if !l.Healthy() {
		t.Fatal("healthy log reports unhealthy")
	}

	fs.InjectSyncError(nil)
	err = l.Append(sampleTx(t, key, "doomed"))
	if !errors.Is(err, chaos.ErrInjectedFault) {
		t.Fatalf("append over failed sync err = %v", err)
	}
	if l.Healthy() {
		t.Fatal("log healthy after failed sync")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil on poisoned log")
	}

	// Every later append fails with ErrPoisoned even though the disk
	// has "recovered" — the unsynced tail is in an unknown state.
	for i := 0; i < 3; i++ {
		if err := l.Append(sampleTx(t, key, "after")); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("append %d after poison err = %v", i, err)
		}
	}
	// Compaction also refuses.
	if err := l.Compact(nil); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("compact on poisoned log err = %v", err)
	}
	l.Close()

	// Crash the machine and reopen: poison clears, and what replays is
	// a valid prefix of the append stream — the synced record always,
	// the unsynced one only if the kernel happened to flush it anyway.
	fs.Reboot()
	count := 0
	l2, err := OpenFS(fs, "tx.log", func(*txn.Transaction) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if count < 1 || count > 2 {
		t.Fatalf("replayed %d, want 1 (synced) or 2 (unsynced tail flushed anyway)", count)
	}
	if !l2.Healthy() {
		t.Fatal("reopened log unhealthy")
	}
	if err := l2.Append(sampleTx(t, key, "recovered")); err != nil {
		t.Fatal(err)
	}
}

func TestPoisonOnFailedWrite(t *testing.T) {
	fs := chaos.NewMemFS(2)
	key := mustKey(t)
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fs.InjectWriteError(nil)
	if err := l.Append(sampleTx(t, key, "short")); !errors.Is(err, chaos.ErrInjectedFault) {
		t.Fatalf("append over short write err = %v", err)
	}
	if err := l.Append(sampleTx(t, key, "next")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after short write err = %v", err)
	}
}

func TestCompactRewritesSegment(t *testing.T) {
	fs := chaos.NewMemFS(3)
	key := mustKey(t)
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	var all []*txn.Transaction
	for i := 0; i < 10; i++ {
		tx := sampleTx(t, key, string(rune('a'+i)))
		all = append(all, tx)
		if err := l.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	if l.Generation() != 0 {
		t.Fatalf("fresh generation = %d", l.Generation())
	}

	// Keep the last 4.
	if err := l.Compact(all[6:]); err != nil {
		t.Fatal(err)
	}
	if l.Generation() != 1 {
		t.Fatalf("generation after compact = %d", l.Generation())
	}
	if l.Len() != 4 {
		t.Fatalf("len after compact = %d", l.Len())
	}
	// Appends continue on the new segment.
	post := sampleTx(t, key, "post-compact")
	if err := l.Append(post); err != nil {
		t.Fatal(err)
	}
	l.Close()

	var got []*txn.Transaction
	l2, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
		got = append(got, tx)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 5 {
		t.Fatalf("replayed %d, want 5", len(got))
	}
	want := append(append([]*txn.Transaction(nil), all[6:]...), post)
	for i := range want {
		if got[i].ID() != want[i].ID() {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if st := l2.Stats(); st.Generation != 1 || st.Records != 5 || st.TornBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Temp segment cleaned up.
	for _, name := range fs.Files() {
		if name == "tx.log.compact" {
			t.Fatal("compact temp file left behind")
		}
	}
}

func TestLegacyV1LogOpens(t *testing.T) {
	// Build a headerless v1-format log by hand: raw records, no segment
	// header.
	fs := chaos.NewMemFS(4)
	key := mustKey(t)
	tx := sampleTx(t, key, "legacy")
	rec, err := encodeRecord(tx)
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("tx.log", append(append([]byte(nil), rec...), rec[:5]...)) // + torn tail

	count := 0
	l, err := OpenFS(fs, "tx.log", func(got *txn.Transaction) error {
		if got.ID() != tx.ID() {
			t.Fatal("legacy record mangled")
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d, want 1", count)
	}
	st := l.Stats()
	if !st.LegacyV1 || st.Generation != 0 || st.TornBytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
	// First compaction upgrades the file to a v2 segment.
	if err := l.Compact([]*txn.Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	raw, err := fs.ReadFile("tx.log")
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(raw[:4]) != segMagic {
		t.Fatal("compacted log missing segment header")
	}
	l2, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.LegacyV1 || st.Generation != 1 || st.Records != 1 {
		t.Fatalf("post-upgrade stats = %+v", st)
	}
}

func TestTornSegmentHeaderResets(t *testing.T) {
	fs := chaos.NewMemFS(5)
	var hdr [segHeaderSize]byte
	putSegHeader(hdr[:], 0)
	fs.WriteFile("tx.log", hdr[:7]) // crashed mid-header-write

	l, err := OpenFS(fs, "tx.log", func(*txn.Transaction) error {
		t.Fatal("replayed a record from a torn header")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(sampleTx(t, mustKey(t), "fresh")); err != nil {
		t.Fatal(err)
	}
}

func TestRealFSStatsAndGeneration(t *testing.T) {
	// The same v2 behaviour through chaos.OS() on a real temp dir.
	path := filepath.Join(t.TempDir(), "tx.log")
	key := mustKey(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := sampleTx(t, key, "disk")
	if err := l.Append(tx); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact([]*txn.Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleTx(t, key, "disk2")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	count := 0
	l2, err := Open(path, func(*txn.Transaction) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if count != 2 || l2.Generation() != 1 {
		t.Fatalf("count=%d gen=%d", count, l2.Generation())
	}
	if _, err := os.Stat(path + ".compact"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp segment left on real fs")
	}
}
