package store

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/b-iot/biot/internal/chaos"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// tortureSeed lets a failing schedule be replayed: the failure message
// prints the seed and crash point, and BIOT_CHAOS_SEED pins it.
func tortureSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("BIOT_CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BIOT_CHAOS_SEED: %v", err)
		}
		return seed
	}
	return 0xB107
}

// TestCrashPointTorture enumerates every durable-affecting I/O
// operation in an append → compact → append cycle and crashes the disk
// at each one. After every crash, reopening the log must recover a
// state S with mustHave ⊑ S ⊑ H, where mustHave is the set of records
// durable when the crash hit (successful Appends sync; successful
// Compact replaces), H is one of the two valid histories (pre-compact
// stream, or compacted stream + post appends), and ⊑ is the
// record-prefix relation. That single relation pins all four
// acceptance properties: no loss of synced records, no corruption, no
// duplicates, no undetected torn tail.
func TestCrashPointTorture(t *testing.T) {
	seed := tortureSeed(t)
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tag string) *txn.Transaction {
		tx := sampleTx(t, key, tag)
		return tx
	}
	pre := make([]*txn.Transaction, 6)
	for i := range pre {
		pre[i] = mk(fmt.Sprintf("pre-%d", i))
	}
	keep := pre[3:] // compaction keeps the last 3
	post := []*txn.Transaction{mk("post-0"), mk("post-1")}

	ids := func(txs []*txn.Transaction) []hashutil.Hash {
		out := make([]hashutil.Hash, len(txs))
		for i, tx := range txs {
			out[i] = tx.ID()
		}
		return out
	}
	h1 := ids(pre)                       // history if compaction never committed
	h2 := append(ids(keep), ids(post)...) // history once it did

	// workload drives the cycle, recording after each completed step
	// the lower bound of what must now be durable. It returns on the
	// first injected crash.
	workload := func(fs *chaos.MemFS) (mustHave []hashutil.Hash) {
		l, err := OpenFS(fs, "tx.log", nil)
		if err != nil {
			return nil
		}
		defer l.Close()
		for _, tx := range pre {
			if err := l.Append(tx); err != nil {
				return mustHave
			}
			mustHave = append(mustHave, tx.ID())
		}
		if err := l.Compact(keep); err != nil {
			return mustHave
		}
		mustHave = ids(keep)
		for _, tx := range post {
			if err := l.Append(tx); err != nil {
				return mustHave
			}
			mustHave = append(mustHave, tx.ID())
		}
		return mustHave
	}

	// Fault-free dry run to learn the op count and sanity-check the
	// invariant machinery.
	dry := chaos.NewMemFS(seed)
	if got := workload(dry); len(got) != len(h2) {
		t.Fatalf("dry run completed %d records, want %d", len(got), len(h2))
	}
	total := dry.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few ops: %d", total)
	}

	isPrefix := func(p, s []hashutil.Hash) bool {
		if len(p) > len(s) {
			return false
		}
		for i := range p {
			if p[i] != s[i] {
				return false
			}
		}
		return true
	}

	for crash := 1; crash <= total; crash++ {
		fs := chaos.NewMemFS(seed + int64(crash))
		fs.CrashAfter(crash)
		mustHave := workload(fs)
		if !fs.Crashed() {
			t.Fatalf("seed=%d crash=%d: workload survived its crash point", seed, crash)
		}
		fs.Reboot()

		var recovered []hashutil.Hash
		l, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
			recovered = append(recovered, tx.ID())
			return nil
		})
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Crashed before the file's directory entry was durable.
				if len(mustHave) > 0 {
					t.Fatalf("seed=%d crash=%d: log vanished with %d durable records", seed, crash, len(mustHave))
				}
				continue
			}
			t.Fatalf("seed=%d crash=%d: recovery failed: %v", seed, crash, err)
		}

		if !isPrefix(recovered, h1) && !isPrefix(recovered, h2) {
			t.Fatalf("seed=%d crash=%d: recovered %d records match neither history (corruption, duplicate, or reorder)",
				seed, crash, len(recovered))
		}
		if !isPrefix(mustHave, recovered) {
			t.Fatalf("seed=%d crash=%d: lost durable records: recovered %d, %d were synced",
				seed, crash, len(recovered), len(mustHave))
		}
		// The recovered log must be live: a post-recovery append lands
		// and survives another clean reopen.
		probe := mk(fmt.Sprintf("probe-%d", crash))
		if err := l.Append(probe); err != nil {
			t.Fatalf("seed=%d crash=%d: recovered log rejects appends: %v", seed, crash, err)
		}
		l.Close()
		found := false
		l2, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
			if tx.ID() == probe.ID() {
				found = true
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed=%d crash=%d: second reopen: %v", seed, crash, err)
		}
		l2.Close()
		if !found {
			t.Fatalf("seed=%d crash=%d: post-recovery append lost", seed, crash)
		}
	}
}

// TestCrashDuringRecoveryTruncation crashes the disk during the
// truncate-and-sync that repairs a torn tail, then recovers again: the
// second recovery must still satisfy the prefix invariant (the repair
// itself is crash-safe).
func TestCrashDuringRecoveryTruncation(t *testing.T) {
	seed := tortureSeed(t)
	key, err := identity.Generate()
	if err != nil {
		t.Fatal(err)
	}
	fs := chaos.NewMemFS(seed)
	l, err := OpenFS(fs, "tx.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []hashutil.Hash
	for i := 0; i < 3; i++ {
		tx := sampleTx(t, key, fmt.Sprintf("r%d", i))
		if err := l.Append(tx); err != nil {
			t.Fatal(err)
		}
		want = append(want, tx.ID())
	}
	l.Close()

	// Plant a torn tail, then crash on the repair's truncate.
	raw, err := fs.ReadFile("tx.log")
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("tx.log", append(raw, 0xB1, 0x0C, 0x0D))
	fs.CrashAfter(1)
	if _, err := OpenFS(fs, "tx.log", nil); !errors.Is(err, chaos.ErrCrashed) {
		t.Fatalf("open over crashed repair err = %v", err)
	}
	fs.Reboot()

	var got []hashutil.Hash
	l2, err := OpenFS(fs, "tx.log", func(tx *txn.Transaction) error {
		got = append(got, tx.ID())
		return nil
	})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch after double recovery", i)
		}
	}
}
