package tangle

import "github.com/b-iot/biot/internal/hashutil"

// The anchor set is the moving confirmed frontier that weighted walks
// start from (see tipselect.go). Starting a walk at genesis costs
// O(DAG depth) per selection; starting it at a recently confirmed
// vertex bounds the walk to the unconfirmed frontier, which stays
// roughly constant-sized as the tangle grows.
//
// Anchor invariant: every entry in t.anchors is a live (present in
// t.vertices, i.e. not snapshotted), confirmed, non-rejected vertex.
// The three mutation sites uphold it:
//
//   - propagateWeightLocked adds a vertex the moment it is confirmed;
//   - resolveConflictLocked drops a vertex that is rejected after
//     confirmation (snapshotted-winner edge case);
//   - Snapshot drops pruned vertices.
//
// A walk starting from an anchor therefore never begins in (and, since
// approver edges only point at live vertices, never steps into)
// snapshotted territory. Walks that end off-tip — every approver path
// from the anchor died in rejections — restart from genesis, so
// anchoring is an optimization with a correctness fallback, never a
// behaviour change for the caller.

// anchorSetSize bounds the anchor set. A handful of frontier vertices
// keeps walk entry points spread across recent branches without making
// the per-confirmation update noticeable.
const anchorSetSize = 8

// addAnchorLocked records a newly confirmed vertex as a walk anchor.
// When the set is full the lowest vertex is evicted, keeping the set on
// the highest (closest-to-tips) part of the confirmed frontier.
func (t *Tangle) addAnchorLocked(v *vertex) {
	if len(t.anchors) < anchorSetSize {
		t.anchors = append(t.anchors, v.id)
		t.anchorGaugesLocked()
		return
	}
	lowest, lowestHeight := -1, v.height+1
	for i, id := range t.anchors {
		if a, ok := t.vertices[id]; ok {
			if a.height < lowestHeight {
				lowest, lowestHeight = i, a.height
			}
		} else {
			lowest, lowestHeight = i, -1 // stale entry: always replace
		}
	}
	if lowest >= 0 {
		t.anchors[lowest] = v.id
		t.anchorGaugesLocked()
	}
}

// dropAnchorLocked removes id from the anchor set if present — called
// when a confirmed vertex stops qualifying (rejection or snapshot).
func (t *Tangle) dropAnchorLocked(id hashutil.Hash) {
	for i, a := range t.anchors {
		if a == id {
			t.anchors[i] = t.anchors[len(t.anchors)-1]
			t.anchors = t.anchors[:len(t.anchors)-1]
			t.anchorGaugesLocked()
			return
		}
	}
}

// anchorGaugesLocked refreshes the exported anchor gauges.
func (t *Tangle) anchorGaugesLocked() {
	t.met.AnchorCount.Set(int64(len(t.anchors)))
	top := 0
	for _, id := range t.anchors {
		if a, ok := t.vertices[id]; ok && a.height > top {
			top = a.height
		}
	}
	t.met.AnchorHeight.Set(int64(top))
}

// anchorStartLocked picks a walk starting vertex from the anchor set,
// or nil when no usable anchor exists. Entries violating the anchor
// invariant are never returned (belt-and-braces: the mutation sites
// should already have removed them).
func (t *Tangle) anchorStartLocked(w *walker) *vertex {
	for range t.anchors {
		id := t.anchors[w.rng.Intn(len(t.anchors))]
		if a, ok := t.vertices[id]; ok && a.status == StatusConfirmed {
			return a
		}
	}
	return nil
}
