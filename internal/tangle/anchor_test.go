package tangle

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// growChain attaches n transactions in a chain-ish shape via uniform
// selection, advancing the clock a step per attach.
func growChain(t testing.TB, tg *Tangle, vc *clock.Virtual, n int, tag string) {
	t.Helper()
	key := mustKey(t)
	for i := 0; i < n; i++ {
		if vc != nil {
			vc.Advance(time.Second)
		}
		trunk, branch, err := tg.SelectTips(StrategyUniform)
		if err != nil {
			t.Fatalf("select: %v", err)
		}
		if _, err := tg.Attach(buildTx(t, key, trunk, branch, fmt.Sprintf("%s-%d", tag, i))); err != nil {
			t.Fatalf("attach: %v", err)
		}
	}
}

func tipSet(t testing.TB, tg *Tangle) map[hashutil.Hash]bool {
	t.Helper()
	set := make(map[hashutil.Hash]bool)
	for _, id := range tg.Tips() {
		set[id] = true
	}
	return set
}

// Anchored and genesis-started walks must both land on valid tips, at
// every tangle size, and the anchor invariant (live, confirmed,
// non-rejected entries only) must hold throughout.
func TestAnchoredAndGenesisWalksLandOnTips(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	tg, _ := newTangle(t, DefaultConfig(), vc)
	for round := 0; round < 20; round++ {
		growChain(t, tg, vc, 25, fmt.Sprintf("r%d", round))
		tips := tipSet(t, tg)
		for i := 0; i < 5; i++ {
			at, ab, err := tg.SelectTips(StrategyWeightedWalk)
			if err != nil {
				t.Fatal(err)
			}
			gt, gb, err := tg.SelectTipsGenesisWalk(StrategyWeightedWalk)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range []hashutil.Hash{at, ab, gt, gb} {
				if !tips[id] {
					t.Fatalf("round %d: walk returned non-tip %s", round, id.Short())
				}
			}
		}
		checkAnchorInvariant(t, tg)
	}
	if tg.Metrics().AnchorCount.Value() == 0 {
		t.Fatal("no anchors after 500 attachments with confirmations")
	}
	if tg.Metrics().AnchorHeight.Value() == 0 {
		t.Fatal("anchor height gauge never moved")
	}
}

func checkAnchorInvariant(t testing.TB, tg *Tangle) {
	t.Helper()
	tg.mu.RLock()
	defer tg.mu.RUnlock()
	for _, id := range tg.anchors {
		v, ok := tg.vertices[id]
		if !ok {
			t.Fatalf("anchor %s is not live (snapshotted or unknown)", id.Short())
		}
		if v.status != StatusConfirmed {
			t.Fatalf("anchor %s has status %v, want confirmed", id.Short(), v.status)
		}
		if tg.wasColdLocked(id) {
			t.Fatalf("anchor %s is snapshotted", id.Short())
		}
	}
}

// A snapshot that prunes the anchor region must leave tip selection
// working immediately: anchors are purged with their vertices, walks
// fall back cleanly, and no walk ever lands in snapshotted territory.
func TestSnapshotPrunesAnchorsWalksStayValid(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 3
	tg, key := newTangle(t, cfg, vc)

	// A long confirmed chain, a minute per attach, so nearly all of it
	// — including every current anchor — ages past the cutoff.
	last := tg.Genesis()[0]
	for i := 0; i < 60; i++ {
		vc.Advance(time.Minute)
		info, err := tg.Attach(buildTx(t, key, last, last, fmt.Sprintf("c-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		last = info.ID
	}
	if tg.Metrics().AnchorCount.Value() == 0 {
		t.Fatal("fixture built no anchors")
	}
	dropped := tg.Snapshot(vc.Now(), 0)
	if dropped == 0 {
		t.Fatal("snapshot dropped nothing")
	}
	checkAnchorInvariant(t, tg)

	tips := tipSet(t, tg)
	for i := 0; i < 50; i++ {
		trunk, branch, err := tg.SelectTips(StrategyWeightedWalk)
		if err != nil {
			t.Fatalf("select after snapshot: %v", err)
		}
		for _, id := range []hashutil.Hash{trunk, branch} {
			if !tips[id] {
				t.Fatalf("post-snapshot walk returned non-tip %s", id.Short())
			}
			if tg.WasSnapshotted(id) {
				t.Fatalf("walk returned snapshotted vertex %s", id.Short())
			}
		}
	}
	// And the tangle keeps growing normally from here.
	growChain(t, tg, vc, 20, "post")
	checkAnchorInvariant(t, tg)
}

// Observers are delivered events outside the ledger lock, so they may
// call back into the Tangle — this deadlocked under the old
// notify-under-lock scheme.
func TestObserverMayReenterTangle(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	reentered := 0
	tg.Observe(ObserverFunc(func(ev Event) {
		_ = tg.Size()           // read path
		_, _ = tg.InfoOf(ev.Tx) // another read path
		_ = tg.StatsNow()
		reentered++
	}))
	for i := 0; i < 30; i++ {
		attachOne(t, tg, key, fmt.Sprintf("re-%d", i))
	}
	if reentered == 0 {
		t.Fatal("observer never ran")
	}
}

// Events must be delivered in ledger order even under concurrent
// attaches: for any single transaction, EventApproved weights are
// non-decreasing, and a confirmation is seen at most once.
func TestEventOrderUnderConcurrentAttach(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)

	var obsMu sync.Mutex
	lastWeight := make(map[hashutil.Hash]float64)
	confirmed := make(map[hashutil.Hash]int)
	tg.Observe(ObserverFunc(func(ev Event) {
		obsMu.Lock()
		defer obsMu.Unlock()
		switch ev.Kind {
		case EventApproved:
			if ev.Weight < lastWeight[ev.Tx] {
				t.Errorf("approval weight of %s went backwards: %v after %v",
					ev.Tx.Short(), ev.Weight, lastWeight[ev.Tx])
			}
			lastWeight[ev.Tx] = ev.Weight
		case EventConfirmed:
			confirmed[ev.Tx]++
		}
	}))

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := mustKey(t)
			for i := 0; i < 50; i++ {
				trunk, branch, err := tg.SelectTips(StrategyWeightedWalk)
				if err != nil {
					t.Error(err)
					return
				}
				tx := buildTx(t, key, trunk, branch, fmt.Sprintf("g%d-%d", g, i))
				if _, err := tg.Attach(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	obsMu.Lock()
	defer obsMu.Unlock()
	if len(confirmed) == 0 {
		t.Fatal("no confirmations observed")
	}
	for id, n := range confirmed {
		if n != 1 {
			t.Errorf("tx %s confirmed %d times", id.Short(), n)
		}
	}
}

// ExportRange pages must reassemble into exactly Export's view, and
// OrderedIDs must agree with it.
func TestExportRangePagination(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	growChain(t, tg, nil, 37, "p")

	full := tg.Export()
	for _, pageSize := range []int{1, 7, 36, 1000} {
		var paged []*txn.Transaction
		for from := 0; ; from += pageSize {
			page := tg.ExportRange(from, pageSize)
			paged = append(paged, page...)
			if len(page) < pageSize {
				break
			}
		}
		if len(paged) != len(full) {
			t.Fatalf("pageSize %d: %d txs, want %d", pageSize, len(paged), len(full))
		}
		for i := range full {
			if full[i].ID() != paged[i].ID() {
				t.Fatalf("pageSize %d: tx %d differs", pageSize, i)
			}
		}
	}
	ids := tg.OrderedIDs(0, 1<<20)
	if len(ids) != len(full) {
		t.Fatalf("OrderedIDs len %d, want %d", len(ids), len(full))
	}
	for i, tx := range full {
		if tx.ID() != ids[i] {
			t.Fatalf("OrderedIDs[%d] mismatch", i)
		}
	}
	if got := tg.ExportRange(len(full)+5, 10); got != nil {
		t.Errorf("out-of-range export returned %d txs", len(got))
	}
	if got := tg.ExportRange(0, 0); got != nil {
		t.Errorf("zero-limit export returned %d txs", len(got))
	}
}

// recountStats recomputes Stats by full scan — the original O(n)
// implementation — to pin the incremental counters against it.
func recountStats(tg *Tangle) Stats {
	tg.mu.RLock()
	defer tg.mu.RUnlock()
	s := Stats{
		Transactions: len(tg.vertices),
		Tips:         len(tg.tips),
		Snapshotted:  tg.nCold,
	}
	for _, v := range tg.vertices {
		switch v.status {
		case StatusConfirmed:
			s.Confirmed++
		case StatusRejected:
			s.Rejected++
		}
	}
	for _, ids := range tg.spends {
		if len(ids) > 1 {
			s.Conflicts++
		}
	}
	return s
}

// scanOldestApproved is the original O(n) implementation, kept as the
// oracle for the indexed OldestApproved.
func scanOldestApproved(tg *Tangle) (hashutil.Hash, bool) {
	tg.mu.RLock()
	defer tg.mu.RUnlock()
	var best *vertex
	for _, v := range tg.vertices {
		if v.firstApprovedAt.IsZero() || v.tx.Kind == txn.KindGenesis {
			continue
		}
		if best == nil ||
			v.firstApprovedAt.Before(best.firstApprovedAt) ||
			(v.firstApprovedAt.Equal(best.firstApprovedAt) && v.id.Compare(best.id) < 0) {
			best = v
		}
	}
	if best == nil {
		return hashutil.Zero, false
	}
	return best.id, true
}

// The ISSUE's regression guard: after a randomized attach / double-spend
// / snapshot sequence, the O(1) StatsNow counters must match a full
// recomputation, and the indexed OldestApproved must match a full scan.
// Seed-pinned for reproducibility.
func TestStatsNowMatchesRecountUnderRandomizedOps(t *testing.T) {
	for _, seed := range []int64{7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
			cfg := DefaultConfig()
			cfg.ConfirmationWeight = 3
			cfg.Seed = seed
			tg, key := newTangle(t, cfg, vc)
			spender := mustKey(t)
			var seq uint64

			for step := 0; step < 300; step++ {
				switch op := rng.Intn(10); {
				case op < 6: // honest attach
					vc.Advance(time.Duration(rng.Intn(30)) * time.Second)
					strategy := StrategyUniform
					if rng.Intn(2) == 0 {
						strategy = StrategyWeightedWalk
					}
					trunk, branch, err := tg.SelectTips(strategy)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := tg.Attach(buildTx(t, key, trunk, branch, fmt.Sprintf("s-%d", step))); err != nil {
						t.Fatal(err)
					}
				case op < 8: // transfer, often a deliberate conflict
					s := seq
					if rng.Intn(2) == 0 && seq > 0 {
						s--
					} else {
						seq++
					}
					trunk, branch, err := tg.SelectTips(StrategyUniform)
					if err != nil {
						t.Fatal(err)
					}
					tx := transferTx(t, spender, trunk, branch, key.Address(), uint64(rng.Intn(9)+1), s)
					if _, err := tg.Attach(tx); err != nil {
						t.Fatal(err)
					}
				default: // snapshot with a random retention window
					keep := time.Duration(rng.Intn(120)) * time.Second
					tg.Snapshot(vc.Now(), keep)
				}

				if got, want := tg.StatsNow(), recountStats(tg); got != want {
					t.Fatalf("step %d: StatsNow %+v != recount %+v", step, got, want)
				}
				gotID, gotOK := tg.OldestApproved()
				wantID, wantOK := scanOldestApproved(tg)
				if gotOK != wantOK || gotID != wantID {
					t.Fatalf("step %d: OldestApproved (%s,%v) != scan (%s,%v)",
						step, gotID.Short(), gotOK, wantID.Short(), wantOK)
				}
			}
		})
	}
}
