package tangle

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// genTxs pre-builds n attachable transactions with a realistic DAG
// shape: each approves two of the eight most recent vertices. The
// transactions carry an issuer but no signature — Attach verifies
// structure only, and skipping ECDSA keeps the benchmarks measuring the
// ledger, not the crypto.
func genTxs(tb testing.TB, tg *Tangle, n int, seed int64) []*txn.Transaction {
	tb.Helper()
	key := mustKey(tb)
	rng := rand.New(rand.NewSource(seed))
	recent := []hashutil.Hash{tg.Genesis()[0], tg.Genesis()[1]}
	out := make([]*txn.Transaction, 0, n)
	for i := 0; i < n; i++ {
		trunk := recent[rng.Intn(len(recent))]
		branch := recent[rng.Intn(len(recent))]
		tx := &txn.Transaction{
			Trunk:     trunk,
			Branch:    branch,
			Timestamp: time.Unix(1_700_000_000+int64(i), 0),
			Kind:      txn.KindData,
			Issuer:    key.Public(),
			Payload:   []byte(fmt.Sprintf("bench-%d", i)),
		}
		out = append(out, tx)
		recent = append(recent, tx.ID())
		if len(recent) > 8 {
			recent = recent[len(recent)-8:]
		}
	}
	return out
}

func benchTangle(tb testing.TB, size int) *Tangle {
	tb.Helper()
	tg, _ := newTangle(tb, DefaultConfig(), nil)
	for _, tx := range genTxs(tb, tg, size, 1) {
		if _, err := tg.Attach(tx); err != nil {
			tb.Fatalf("prebuild attach: %v", err)
		}
	}
	return tg
}

// BenchmarkTangleAttach measures raw attach cost (weight propagation,
// tip bookkeeping, event collection) with -benchmem evidence that the
// hot path no longer allocates a visited map per attach.
func BenchmarkTangleAttach(b *testing.B) {
	tg, _ := newTangle(b, DefaultConfig(), nil)
	txs := genTxs(b, tg, b.N, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.Attach(txs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTangleSelectTips measures tip-selection latency per strategy
// and tangle size. The anchored/genesis pair at each size is the
// headline: anchored weighted walks stay flat as the tangle grows while
// genesis-anchored walks scale with DAG depth.
func BenchmarkTangleSelectTips(b *testing.B) {
	for _, size := range []int{1_000, 10_000} {
		tg := benchTangle(b, size)
		b.Run(fmt.Sprintf("uniform/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := tg.SelectTips(StrategyUniform); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("walk-anchored/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := tg.SelectTips(StrategyWeightedWalk); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("walk-genesis/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := tg.SelectTipsGenesisWalk(StrategyWeightedWalk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTangleConcurrentSelectDuringAttach drives parallel tip
// selections while a writer goroutine keeps attaching — the
// read-concurrency the RLock redesign buys. Run under -race by `make
// test` as the concurrent-reader smoke check.
func BenchmarkTangleConcurrentSelectDuringAttach(b *testing.B) {
	tg := benchTangle(b, 5_000)
	extra := genTxs(b, tg, 100_000, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tx := range extra {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tg.Attach(tx); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := tg.SelectTips(StrategyWeightedWalk); err != nil {
				b.Error(err)
				return
			}
		}
	})
	close(stop)
	wg.Wait()
}

// BenchmarkTangleStatsNow pins the O(1) stats path.
func BenchmarkTangleStatsNow(b *testing.B) {
	tg := benchTangle(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tg.StatsNow()
	}
}

// BenchmarkTangleOldestApproved pins the indexed oldest-approved path
// used by the attack injectors.
func BenchmarkTangleOldestApproved(b *testing.B) {
	tg := benchTangle(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tg.OldestApproved(); !ok {
			b.Fatal("no approved vertex")
		}
	}
}

// BenchmarkTangleExportRange measures one bounded sync page against the
// tangle, the unit of work the node sync path holds the read lock for.
func BenchmarkTangleExportRange(b *testing.B) {
	tg := benchTangle(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page := tg.ExportRange((i*256)%9_000, 256)
		if len(page) == 0 {
			b.Fatal("empty page")
		}
	}
}
