package tangle

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// The hot/cold split bounds ledger memory. The in-memory DAG holds only
// the hot frontier; everything a snapshot prunes moves to the cold
// region, represented by two structures instead of the old
// grow-forever snapshotted map:
//
//   - boundary: the pruned IDs still referenced as a parent by at least
//     one live vertex — the snapshot boundary roots. This set is
//     O(frontier): it is recomputed from the live vertices on every
//     snapshot, so IDs leave it as their children are pruned in turn.
//   - cold: an optional store-backed membership index (see
//     store.ColdIndex) holding every pruned ID. Membership checks hit
//     memory first (boundary, then a bloom filter inside the index) and
//     touch disk only on a possible match, so the duplicate and
//     pruned-parent rejections of snapshot.go keep their exact
//     semantics at O(1) memory per node lifetime.
//
// Nodes without persistence (unit tests, short-lived tools) have no
// place to put a cold index; they fall back to an in-memory cold set,
// which reproduces the historical behaviour — exact and unbounded. For
// such nodes the full tangle already lives in memory, so the 32-byte
// IDs are not the dominant term.

// ColdStore is the membership index for pruned transaction IDs. The
// tangle writes each snapshot's pruned IDs to it and consults it when a
// membership check misses both the live vertices and the boundary set.
// Implementations must be safe for concurrent use; store.ColdIndex is
// the production implementation.
type ColdStore interface {
	// Contains reports whether id was ever added. It must have no
	// false negatives; a read error is returned rather than guessed
	// around.
	Contains(id hashutil.Hash) (bool, error)
	// AddBatch durably records ids as pruned at the given epoch
	// boundary. Duplicates across batches are permitted.
	AddBatch(ids []hashutil.Hash, epoch time.Time) error
	// Len returns the number of IDs added (duplicates may be counted
	// until the implementation compacts them).
	Len() int
}

// ErrNotFresh reports a bootstrap attempt on a tangle that already has
// history attached or pruned.
var ErrNotFresh = errors.New("tangle is not fresh")

// SetColdStore installs the store-backed cold membership index. Pruned
// IDs accumulated so far in the in-memory fallback (journal replay runs
// before persistence hands the index over) are flushed into it.
func (t *Tangle) SetColdStore(cs ColdStore) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cs == nil {
		return errors.New("nil cold store")
	}
	if len(t.coldMem) > 0 {
		ids := make([]hashutil.Hash, 0, len(t.coldMem))
		for id := range t.coldMem {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
		if err := cs.AddBatch(ids, t.coldEpoch); err != nil {
			return fmt.Errorf("flush cold fallback: %w", err)
		}
		t.coldMem = nil
	}
	t.cold = cs
	// A restarted node's replay rebuilt the boundary but not the prune
	// count: the durable index remembers how much history was ever
	// folded away, so Stats.Snapshotted survives the restart.
	if n := cs.Len(); n > t.nCold {
		t.nCold = n
	}
	t.updateMemGaugesLocked()
	return nil
}

// RestoreColdEpoch re-establishes the last snapshot cutoff after a
// restart (the epoch lives in the durable cold index, not the journal).
// Later instants win; a zero epoch is ignored.
func (t *Tangle) RestoreColdEpoch(epoch time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if epoch.After(t.coldEpoch) {
		t.coldEpoch = epoch
	}
}

// wasColdLocked is the single membership check for the cold region:
// boundary first (hot, exact), then the cold store (bloom-filtered,
// exact on disk), then the in-memory fallback. A cold-store read error
// is counted and treated as "not cold" — the node degrades to
// re-admitting ancient history rather than halting admission.
func (t *Tangle) wasColdLocked(id hashutil.Hash) bool {
	if _, ok := t.boundary[id]; ok {
		return true
	}
	if t.cold != nil {
		ok, err := t.cold.Contains(id)
		if err != nil {
			t.met.ColdErrors.Inc()
			return false
		}
		return ok
	}
	_, ok := t.coldMem[id]
	return ok
}

// markColdLocked records id as pruned in the fallback set when no cold
// store is installed (with one, persistence happens batched inside
// Snapshot). It does not touch nCold — callers account for that.
func (t *Tangle) markColdLocked(id hashutil.Hash) {
	if t.cold == nil {
		t.coldMem[id] = struct{}{}
	}
}

// BoundaryRoots returns the current snapshot-boundary roots — pruned
// IDs still referenced as a parent by a live vertex — in sorted order.
// This is the structural part of a snapshot manifest: a bootstrapping
// peer that seeds these IDs can attach every live transaction.
func (t *Tangle) BoundaryRoots() []hashutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]hashutil.Hash, 0, len(t.boundary))
	for id := range t.boundary {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// BoundaryCount returns the current number of boundary roots.
func (t *Tangle) BoundaryCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.boundary)
}

// ColdEpoch returns the cutoff instant of the most recent snapshot that
// pruned anything (zero when the tangle has never pruned). All settled
// history attached before it has moved to the cold region.
func (t *Tangle) ColdEpoch() time.Time {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.coldEpoch
}

// BeginBootstrap seeds a fresh tangle with the boundary roots of a
// peer's snapshot manifest and switches attachment into bootstrap mode:
// until EndBootstrap, a transaction whose missing parent is one of the
// seeded boundary roots attaches as a pruned-boundary root, exactly as
// Restore reconstructs the shape on the peer. Parents that are neither
// live nor boundary roots keep failing with ErrUnknownParent, and every
// other admission rule is unchanged — bootstrap mode widens nothing but
// the boundary attach.
//
// It fails with ErrNotFresh unless the tangle holds only genesis and
// has never pruned: bootstrap replaces history, so there must be none.
func (t *Tangle) BeginBootstrap(boundary []hashutil.Hash, epoch time.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.order) != len(t.genesis) || t.nCold != 0 {
		return fmt.Errorf("%w: %d vertices, %d cold", ErrNotFresh, len(t.order), t.nCold)
	}
	for _, id := range boundary {
		if _, ok := t.vertices[id]; ok {
			continue // genesis shared with the peer
		}
		if _, ok := t.boundary[id]; ok {
			continue
		}
		t.boundary[id] = struct{}{}
		t.markColdLocked(id)
		t.nCold++
	}
	t.coldEpoch = epoch
	t.bootstrapping = true
	t.updateMemGaugesLocked()
	return nil
}

// EndBootstrap leaves bootstrap mode, restoring strict parent checks.
func (t *Tangle) EndBootstrap() {
	t.mu.Lock()
	t.bootstrapping = false
	t.mu.Unlock()
}

// Bootstrapping reports whether the tangle is in bootstrap mode.
func (t *Tangle) Bootstrapping() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bootstrapping
}

// updateMemGaugesLocked refreshes the memory-footprint gauges. Called
// on the mutation paths that change the live or cold population.
func (t *Tangle) updateMemGaugesLocked() {
	t.met.ResidentVertices.Set(int64(len(t.vertices)))
	t.met.BoundaryRoots.Set(int64(len(t.boundary)))
	t.met.ColdTotal.Set(int64(t.nCold))
}

// retainedKinds: transactions of these kinds are never pruned by
// Snapshot. The authorization control plane must survive pruning so a
// snapshot-bootstrapped node can rebuild its device registry from the
// live region alone — the lists are manager-signed, tiny and rare
// relative to data traffic, so retaining them costs O(list updates),
// not O(history).
func retainedKind(k txn.Kind) bool {
	return k == txn.KindGenesis || k == txn.KindAuthorization
}
