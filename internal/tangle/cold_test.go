package tangle

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// buildChain attaches a linear chain keeping the original transaction
// bytes, so tests can replay the exact pruned encodings.
func buildChain(t *testing.T, tg *Tangle, key *identity.KeyPair, vc *clock.Virtual, n int) []*txn.Transaction {
	t.Helper()
	var txs []*txn.Transaction
	last := tg.Genesis()[0]
	for i := 0; i < n; i++ {
		vc.Advance(time.Minute)
		tx := buildTx(t, key, last, last, fmt.Sprintf("chain-%d", i))
		info, err := tg.Attach(tx)
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
		last = info.ID
	}
	return txs
}

// TestColdByteIdenticalDuplicateRejection pins the exact historical
// semantics the bounded snapshotted set must preserve: re-submitting
// the byte-identical encoding of a pruned transaction is a duplicate,
// and attaching a NEW transaction onto a pruned parent is a
// snapshotted-parent rejection — not an unknown parent, and never a
// silent re-admission.
func TestColdByteIdenticalDuplicateRejection(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 3
	tg, key := newTangle(t, cfg, vc)
	txs := buildChain(t, tg, key, vc, 20)

	if dropped := tg.Snapshot(vc.Now(), 5*time.Minute); dropped == 0 {
		t.Fatal("snapshot dropped nothing")
	}
	pruned := txs[0]
	if tg.Contains(pruned.ID()) {
		t.Skip("fixture did not prune the oldest tx")
	}

	// Byte-identical re-admission: decode the original encoding afresh
	// so no in-memory aliasing hides a semantic change.
	clone, err := txn.Decode(pruned.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Attach(clone); !errors.Is(err, ErrDuplicate) {
		t.Errorf("re-attach of pruned tx: err = %v, want ErrDuplicate", err)
	}

	// New child of a pruned parent.
	necro := buildTx(t, key, pruned.ID(), pruned.ID(), "necromancer")
	if _, err := tg.Attach(necro); !errors.Is(err, ErrSnapshottedParent) {
		t.Errorf("attach to pruned parent: err = %v, want ErrSnapshottedParent", err)
	}
}

// TestSnapshotEpochCoordinatesCutoff: two nodes holding the same ledger
// and pruning at different instants within the same epoch interval must
// cut at the same quantized boundary — identical drop counts, identical
// boundary roots. That shared boundary is what makes one node's
// snapshot manifest attachable on another.
func TestSnapshotEpochCoordinatesCutoff(t *testing.T) {
	start := time.Unix(1_700_000_000, 0)
	key := mustKey(t)
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 3

	mk := func() (*Tangle, *clock.Virtual) {
		vc := clock.NewVirtual(start)
		tg, err := New(cfg, key.Public(), vc)
		if err != nil {
			t.Fatal(err)
		}
		return tg, vc
	}
	tgA, vcA := mk()
	tgB, vcB := mk()

	// Same genesis (same manager key), same traffic, same timeline.
	last := tgA.Genesis()[0]
	for i := 0; i < 30; i++ {
		vcA.Advance(time.Minute)
		vcB.Advance(time.Minute)
		tx := buildTx(t, key, last, last, fmt.Sprintf("shared-%d", i))
		infoA, err := tgA.Attach(tx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tgB.Attach(tx); err != nil {
			t.Fatal(err)
		}
		last = infoA.ID
	}

	// Node B compacts later than node A — as late as possible while its
	// cutoff still falls inside A's epoch bucket. Quantization must make
	// the two cuts identical despite the skew.
	const keep = 5 * time.Minute
	const interval = 10 * time.Minute
	nowA := vcA.Now()
	epoch := nowA.Add(-keep).Truncate(interval)
	nowB := epoch.Add(interval).Add(keep - time.Second) // cutoff 1s before the next boundary
	droppedA := tgA.SnapshotEpoch(nowA, keep, interval)
	vcB.Advance(nowB.Sub(vcB.Now()))
	droppedB := tgB.SnapshotEpoch(vcB.Now(), keep, interval)

	if droppedA == 0 {
		t.Fatal("epoch snapshot dropped nothing")
	}
	if droppedA != droppedB {
		t.Fatalf("drop counts diverge: A=%d B=%d", droppedA, droppedB)
	}
	bA, bB := tgA.BoundaryRoots(), tgB.BoundaryRoots()
	if len(bA) == 0 || len(bA) != len(bB) {
		t.Fatalf("boundary sizes diverge: A=%d B=%d", len(bA), len(bB))
	}
	for i := range bA {
		if bA[i] != bB[i] {
			t.Fatalf("boundary root %d diverges", i)
		}
	}
	if !tgA.ColdEpoch().Equal(tgB.ColdEpoch()) {
		t.Errorf("cold epochs diverge: A=%v B=%v", tgA.ColdEpoch(), tgB.ColdEpoch())
	}
}

// TestBootstrapAttachesLiveRegion drives the tangle half of a snapshot-
// shipped join: a fresh tangle seeded with a pruned peer's boundary
// roots attaches the peer's exported live region verbatim and converges
// on the identical live ID set — without ever seeing the pruned
// history. Strict parent checks must return the moment bootstrap ends.
func TestBootstrapAttachesLiveRegion(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 3
	key := mustKey(t)
	seasoned, err := New(cfg, key.Public(), vc)
	if err != nil {
		t.Fatal(err)
	}
	buildChain(t, seasoned, key, vc, 40)
	if dropped := seasoned.Snapshot(vc.Now(), 5*time.Minute); dropped == 0 {
		t.Fatal("snapshot dropped nothing")
	}

	fresh, err := New(cfg, key.Public(), vc)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.BeginBootstrap(seasoned.BoundaryRoots(), seasoned.ColdEpoch()); err != nil {
		t.Fatal(err)
	}
	for _, tx := range seasoned.Export() {
		if tx.Kind == txn.KindGenesis {
			continue
		}
		if _, err := fresh.Attach(tx); err != nil && !errors.Is(err, ErrDuplicate) {
			t.Fatalf("bootstrap attach %s: %v", tx.ID().Short(), err)
		}
	}
	fresh.EndBootstrap()

	want := make(map[hashutil.Hash]struct{})
	for _, tx := range seasoned.Export() {
		want[tx.ID()] = struct{}{}
	}
	if got := fresh.Size(); got != len(want) {
		t.Fatalf("bootstrapped size = %d, want %d", got, len(want))
	}
	for id := range want {
		if !fresh.Contains(id) {
			t.Fatalf("live tx %s missing after bootstrap", id.Short())
		}
	}
	if !fresh.ColdEpoch().Equal(seasoned.ColdEpoch()) {
		t.Error("bootstrap did not carry the cold epoch")
	}

	// Outside bootstrap mode an unknown parent stays an error even
	// though it matches nothing cold.
	stray := buildTx(t, key, hashutil.Sum([]byte("nowhere")), hashutil.Sum([]byte("nowhere")), "stray")
	if _, err := fresh.Attach(stray); !errors.Is(err, ErrUnknownParent) {
		t.Errorf("post-bootstrap stray attach: err = %v, want ErrUnknownParent", err)
	}
}

// TestBeginBootstrapRequiresFreshTangle: bootstrap replaces history, so
// a tangle with any non-genesis vertex (or any pruned history) refuses.
func TestBeginBootstrapRequiresFreshTangle(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	tg, key := newTangle(t, DefaultConfig(), vc)
	attachOne(t, tg, key, "history")
	err := tg.BeginBootstrap([]hashutil.Hash{hashutil.Sum([]byte("b"))}, vc.Now())
	if !errors.Is(err, ErrNotFresh) {
		t.Errorf("err = %v, want ErrNotFresh", err)
	}
}

// TestResidentVerticesStayBounded is the memory regression guard: under
// continuous traffic with periodic epoch snapshots, the resident vertex
// count must plateau at O(keep-window), however long the node runs, and
// the boundary set must stay O(frontier) — for a linear chain, a
// handful of roots, NOT a set growing with pruned history.
func TestResidentVerticesStayBounded(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 3
	tg, key := newTangle(t, cfg, vc)

	const (
		rounds   = 12
		perRound = 50
		keep     = 5 * time.Minute
	)
	last := tg.Genesis()[0]
	maxResident, maxBoundary := 0, 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			vc.Advance(30 * time.Second)
			tx := buildTx(t, key, last, last, fmt.Sprintf("r%d-%d", r, i))
			info, err := tg.Attach(tx)
			if err != nil {
				t.Fatal(err)
			}
			last = info.ID
		}
		tg.Snapshot(vc.Now(), keep)
		if s := tg.Size(); s > maxResident {
			maxResident = s
		}
		if b := tg.BoundaryCount(); b > maxBoundary {
			maxBoundary = b
		}
	}
	total := rounds * perRound
	if tg.SnapshottedCount() < total/2 {
		t.Fatalf("guard fixture barely pruned: %d of %d", tg.SnapshottedCount(), total)
	}
	// keep covers 10 chain steps at 30s spacing; one round of slack plus
	// the unsettled tail bounds the plateau far below total history.
	if bound := 2*perRound + 20; maxResident > bound {
		t.Errorf("resident vertices peaked at %d, want ≤ %d (history %d)", maxResident, bound, total)
	}
	if maxBoundary > 8 {
		t.Errorf("boundary grew to %d roots on a linear chain", maxBoundary)
	}
	// The gauges agree with the structures they mirror.
	m := tg.Metrics()
	if got, want := int(m.ResidentVertices.Value()), tg.Size(); got != want {
		t.Errorf("ResidentVertices gauge = %d, want %d", got, want)
	}
	if got, want := int(m.ColdTotal.Value()), tg.SnapshottedCount(); got != want {
		t.Errorf("ColdTotal gauge = %d, want %d", got, want)
	}
}
