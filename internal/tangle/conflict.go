package tangle

import (
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// recordSpendLocked registers the spend consumed by a transfer vertex
// and, when a conflict appears, resolves it by cumulative weight: the
// heaviest spender of the (account, seq) resource stays pending (or
// confirmed), all others are rejected. It returns the events to emit.
//
// This realizes the paper's observation that "such behaviour will be
// detected and canceled by asynchronous consensus mechanism" while the
// credit mechanism (fed by the EventDoubleSpend) supplies the punishment
// the original consensus lacks.
func (t *Tangle) recordSpendLocked(v *vertex, tr txn.Transfer, now time.Time) []Event {
	key := txn.SpendKeyOf(v.tx, tr)
	t.spends[key] = append(t.spends[key], v.id)
	group := t.spends[key]
	if len(group) == 1 {
		return nil
	}
	if len(group) == 2 {
		t.nConflicts++ // key just became conflicting
	}

	// Conflict: attribute a double-spend event to the offender (all
	// conflicting txs share the sender, which is the spend key account).
	events := []Event{{
		Kind:    EventDoubleSpend,
		Node:    key.Account,
		Tx:      v.id,
		Related: relatedExcept(group, v.id),
		At:      now,
	}}
	events = append(events, t.resolveConflictLocked(group, now)...)
	return events
}

// resolveConflictLocked picks the winner among conflicting spends and
// rejects the rest. A snapshotted group member was confirmed before it
// was pruned and therefore wins unconditionally; otherwise confirmed
// transactions beat unconfirmed ones, then cumulative weight decides,
// with the earlier attachment winning ties (first-seen rule).
func (t *Tangle) resolveConflictLocked(group []hashutil.Hash, now time.Time) []Event {
	var winnerID hashutil.Hash
	snapshotWins := false
	for _, id := range group {
		if _, live := t.vertices[id]; !live && t.wasColdLocked(id) {
			snapshotWins = true
			winnerID = id
			break
		}
	}
	var winner *vertex
	if !snapshotWins {
		for _, id := range group {
			cand := t.vertices[id]
			if cand == nil {
				continue
			}
			if winner == nil || beats(cand, winner) {
				winner = cand
			}
		}
		if winner != nil {
			winnerID = winner.id
		}
	}
	var events []Event
	// Cumulative weight can flip the outcome until confirmation: a
	// previously rejected spend whose branch grew heavier is
	// reinstated when it wins a later resolution round.
	if winner != nil && winner.status == StatusRejected {
		winner.status = StatusPending
		t.nRejected--
	}
	for _, id := range group {
		v := t.vertices[id]
		if v == nil || v == winner {
			continue
		}
		if v.status != StatusRejected {
			if v.status == StatusConfirmed {
				// Snapshotted-winner edge case: a confirmed loser is
				// demoted, so it no longer qualifies as a walk anchor.
				t.nConfirmed--
				t.dropAnchorLocked(v.id)
			}
			v.status = StatusRejected
			t.nRejected++
			t.removeTipLocked(v.id) // rejected txs must not be selected as tips
			t.restoreParentTipsLocked(v)
			events = append(events, Event{
				Kind:    EventRejected,
				Node:    v.tx.Sender(),
				Tx:      v.id,
				Related: []hashutil.Hash{winnerID},
				At:      now,
			})
		}
	}
	return events
}

// beats reports whether a should win conflict resolution over b.
func beats(a, b *vertex) bool {
	aConf := a.status == StatusConfirmed
	bConf := b.status == StatusConfirmed
	if aConf != bConf {
		return aConf
	}
	if a.cumWeight != b.cumWeight {
		return a.cumWeight > b.cumWeight
	}
	if !a.attachedAt.Equal(b.attachedAt) {
		return a.attachedAt.Before(b.attachedAt)
	}
	return a.id.Compare(b.id) < 0
}

// restoreParentTipsLocked re-tips the parents of a rejected vertex when
// every one of their approvers is itself rejected — otherwise rejecting
// the frontier's only vertex would leave the tangle with an empty tip
// pool and nothing for honest nodes to approve.
func (t *Tangle) restoreParentTipsLocked(v *vertex) {
	for _, pid := range [...]hashutil.Hash{v.tx.Trunk, v.tx.Branch} {
		p, ok := t.vertices[pid]
		if !ok || p.status == StatusRejected {
			continue
		}
		allRejected := true
		for _, aid := range p.approvers {
			if a, ok := t.vertices[aid]; ok && a.status != StatusRejected {
				allRejected = false
				break
			}
		}
		if allRejected {
			t.addTipLocked(pid)
		}
	}
}

func relatedExcept(group []hashutil.Hash, except hashutil.Hash) []hashutil.Hash {
	out := make([]hashutil.Hash, 0, len(group)-1)
	for _, id := range group {
		if id != except {
			out = append(out, id)
		}
	}
	return out
}

// ConflictsOf returns the IDs conflicting with id over the same spend
// resource, or nil when id has no conflicts.
func (t *Tangle) ConflictsOf(id hashutil.Hash) []hashutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.vertices[id]
	if !ok || v.tx.Kind != txn.KindTransfer {
		return nil
	}
	tr, err := txn.TransferOf(v.tx)
	if err != nil {
		return nil
	}
	group := t.spends[txn.SpendKeyOf(v.tx, tr)]
	if len(group) <= 1 {
		return nil
	}
	return relatedExcept(group, id)
}
