package tangle

import (
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

func transferTx(t testing.TB, key *identity.KeyPair, trunk, branch hashutil.Hash, to identity.Address, amount, seq uint64) *txn.Transaction {
	t.Helper()
	tx := &txn.Transaction{
		Trunk:     trunk,
		Branch:    branch,
		Timestamp: time.Unix(1_700_000_000, 0),
		Kind:      txn.KindTransfer,
		Payload:   txn.EncodeTransfer(txn.Transfer{To: to, Amount: amount, Seq: seq}),
	}
	tx.Sign(key)
	return tx
}

func victim(t testing.TB) identity.Address {
	t.Helper()
	return mustKey(t).Address()
}

func TestDoubleSpendDetectedAndResolved(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	var events []Event
	tg.Observe(ObserverFunc(func(ev Event) { events = append(events, ev) }))

	g := tg.Genesis()
	first := transferTx(t, spender, g[0], g[1], victim(t), 10, 0)
	firstInfo, err := tg.Attach(first)
	if err != nil {
		t.Fatal(err)
	}
	// A tx approving the first spend gives it extra cumulative weight.
	support := buildTx(t, key, firstInfo.ID, firstInfo.ID, "support")
	if _, err := tg.Attach(support); err != nil {
		t.Fatal(err)
	}

	// Conflicting spend of the same (account, seq).
	second := transferTx(t, spender, g[0], g[1], victim(t), 10, 0)
	secondInfo, err := tg.Attach(second)
	if err != nil {
		t.Fatal(err)
	}

	if got := countEvents(events, EventDoubleSpend); got != 1 {
		t.Errorf("double-spend events = %d, want 1", got)
	}
	for _, ev := range events {
		if ev.Kind == EventDoubleSpend && ev.Node != spender.Address() {
			t.Error("double spend attributed to wrong node")
		}
	}

	// The lighter, later spend loses.
	fi, err := tg.InfoOf(firstInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	si, err := tg.InfoOf(secondInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Status == StatusRejected {
		t.Error("heavier first spend was rejected")
	}
	if si.Status != StatusRejected {
		t.Errorf("second spend status = %v, want rejected", si.Status)
	}
}

func TestConflictsOf(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	g := tg.Genesis()
	a, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := tg.ConflictsOf(a.ID); got != nil {
		t.Errorf("fresh transfer has conflicts: %v", got)
	}
	b, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	ca := tg.ConflictsOf(a.ID)
	cb := tg.ConflictsOf(b.ID)
	if len(ca) != 1 || ca[0] != b.ID {
		t.Errorf("ConflictsOf(a) = %v", ca)
	}
	if len(cb) != 1 || cb[0] != a.ID {
		t.Errorf("ConflictsOf(b) = %v", cb)
	}
}

func TestDifferentSeqsDoNotConflict(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	var events []Event
	tg.Observe(ObserverFunc(func(ev Event) { events = append(events, ev) }))
	g := tg.Genesis()
	if _, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 1, 0)); err != nil {
		t.Fatal(err)
	}
	trunk, branch, err := tg.SelectTips(StrategyUniform)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Attach(transferTx(t, spender, trunk, branch, victim(t), 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := countEvents(events, EventDoubleSpend); got != 0 {
		t.Errorf("double-spend events = %d for distinct seqs", got)
	}
}

func TestDifferentAccountsSameSeqDoNotConflict(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	s1, s2 := mustKey(t), mustKey(t)
	var events []Event
	tg.Observe(ObserverFunc(func(ev Event) { events = append(events, ev) }))
	g := tg.Genesis()
	if _, err := tg.Attach(transferTx(t, s1, g[0], g[1], victim(t), 1, 0)); err != nil {
		t.Fatal(err)
	}
	trunk, branch, err := tg.SelectTips(StrategyUniform)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Attach(transferTx(t, s2, trunk, branch, victim(t), 1, 0)); err != nil {
		t.Fatal(err)
	}
	if got := countEvents(events, EventDoubleSpend); got != 0 {
		t.Errorf("double-spend events = %d across accounts", got)
	}
}

func TestTripleSpendKeepsSingleWinner(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	g := tg.Genesis()
	var ids []hashutil.Hash
	for i := 0; i < 3; i++ {
		info, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), uint64(i+1), 0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	notRejected := 0
	for _, id := range ids {
		info, err := tg.InfoOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != StatusRejected {
			notRejected++
		}
	}
	if notRejected != 1 {
		t.Errorf("%d spends survive, want exactly 1", notRejected)
	}
}

func TestRejectedTipRestoresParents(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	g := tg.Genesis()

	first, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Conflicting spend approving the first: it becomes the only tip,
	// then loses resolution. The tip pool must not go empty.
	second := transferTx(t, spender, first.ID, first.ID, victim(t), 2, 0)
	if _, err := tg.Attach(second); err != nil {
		t.Fatal(err)
	}
	if tg.TipCount() == 0 {
		t.Fatal("tip pool is empty after conflict resolution")
	}
	// And honest traffic can continue.
	attachOne(t, tg, key, "after-conflict")
}

func TestRejectedTxNeverSelectedAsTip(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	g := tg.Genesis()
	if _, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 1, 0)); err != nil {
		t.Fatal(err)
	}
	loser, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		trunk, branch, err := tg.SelectTips(StrategyUniform)
		if err != nil {
			t.Fatal(err)
		}
		if trunk == loser.ID || branch == loser.ID {
			t.Fatal("rejected transaction selected as tip")
		}
	}
}

func TestConflictLoserSettlementSkipped(t *testing.T) {
	// The rejected branch must not be exported as a tip nor counted in
	// stats as pending forever; Stats reflects the conflict.
	tg, _ := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	g := tg.Genesis()
	if _, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 2, 0)); err != nil {
		t.Fatal(err)
	}
	s := tg.StatsNow()
	if s.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Rejected)
	}
	if s.Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", s.Conflicts)
	}
}

func TestManyIndependentSpendersNoCrossConflicts(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	var events []Event
	tg.Observe(ObserverFunc(func(ev Event) { events = append(events, ev) }))
	for i := 0; i < 8; i++ {
		spender := mustKey(t)
		for seq := uint64(0); seq < 3; seq++ {
			trunk, branch, err := tg.SelectTips(StrategyUniform)
			if err != nil {
				t.Fatal(err)
			}
			tx := transferTx(t, spender, trunk, branch, victim(t), 1, seq)
			if _, err := tg.Attach(tx); err != nil {
				t.Fatalf("spender %d seq %d: %v", i, seq, err)
			}
		}
	}
	if got := countEvents(events, EventDoubleSpend); got != 0 {
		t.Errorf("spurious double-spend events: %d", got)
	}
	if s := tg.StatsNow(); s.Rejected != 0 {
		t.Errorf("rejected = %d, want 0", s.Rejected)
	}
}

func TestConflictEventCarriesEvidence(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	g := tg.Genesis()
	a, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	var dsEvents []Event
	tg.Observe(ObserverFunc(func(ev Event) {
		if ev.Kind == EventDoubleSpend {
			dsEvents = append(dsEvents, ev)
		}
	}))
	b, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(dsEvents) != 1 {
		t.Fatalf("events = %d", len(dsEvents))
	}
	ev := dsEvents[0]
	if ev.Tx != b.ID {
		t.Error("event tx is not the conflicting submission")
	}
	if len(ev.Related) != 1 || ev.Related[0] != a.ID {
		t.Errorf("event related = %v, want [%v]", ev.Related, a.ID)
	}
}

func TestHeavierLaterSpendWins(t *testing.T) {
	// If the second spend accumulates more weight before resolution is
	// re-triggered, the first-seen rule only breaks ties: build the
	// scenario where the later spend gets supported and a third
	// conflicting spend triggers re-resolution.
	tg, key := newTangle(t, DefaultConfig(), nil)
	spender := mustKey(t)
	g := tg.Genesis()
	a, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// b lost initially (a was earlier; equal weight). Support b's
	// branch heavily — weight accrues even while rejected, and the next
	// conflicting attachment re-runs resolution.
	last := b.ID
	for i := 0; i < 5; i++ {
		tx := buildTx(t, key, last, last, fmt.Sprintf("support-b-%d", i))
		info, err := tg.Attach(tx)
		if err != nil {
			t.Fatal(err)
		}
		last = info.ID
	}
	c, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := tg.InfoOf(a.ID)
	bi, _ := tg.InfoOf(b.ID)
	ci, _ := tg.InfoOf(c.ID)
	winner := 0
	for _, info := range []Info{ai, bi, ci} {
		if info.Status != StatusRejected {
			winner++
		}
	}
	if winner != 1 {
		t.Errorf("%d winners after re-resolution", winner)
	}
	if bi.Status == StatusRejected && bi.CumulativeWeight > ai.CumulativeWeight &&
		ai.Status != StatusRejected && ai.Status != StatusConfirmed {
		t.Error("heavier branch lost to lighter unconfirmed branch")
	}
}
