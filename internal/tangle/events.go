package tangle

import (
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// EventKind classifies ledger events surfaced to observers.
type EventKind int

const (
	// EventConfirmed fires when a transaction's cumulative weight
	// crosses the confirmation threshold.
	EventConfirmed EventKind = iota + 1
	// EventLazyTips fires when a submission approves two stale,
	// already-approved parents (§III "lazy tips").
	EventLazyTips
	// EventDoubleSpend fires when a transfer conflicts with an earlier
	// spend of the same (account, seq) resource (§III).
	EventDoubleSpend
	// EventRejected fires when a transaction loses conflict resolution.
	EventRejected
	// EventApproved fires for each parent of a newly attached
	// transaction; Weight carries the parent's updated validation weight
	// w_k = 1 + direct approvers (consumed by the credit ledger, which
	// measures CrP by transaction weight).
	EventApproved
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventConfirmed:
		return "confirmed"
	case EventLazyTips:
		return "lazy-tips"
	case EventDoubleSpend:
		return "double-spend"
	case EventRejected:
		return "rejected"
	case EventApproved:
		return "approved"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is a ledger occurrence. Node is the account the event is
// attributed to (for malicious events, the offender).
type Event struct {
	Kind    EventKind
	Node    identity.Address
	Tx      hashutil.Hash
	Related []hashutil.Hash
	At      time.Time
	// Weight is set on EventApproved: the parent's updated w_k.
	Weight float64
}

// Observer receives ledger events. Events are collected under the
// ledger lock but delivered after it is released, in ledger order:
// deliveries are serialized (never two OnEvent calls at once) and every
// observer sees every event in the order the ledger produced it.
// Because no tangle lock is held during delivery, implementations may
// call back into the Tangle from OnEvent.
//
// Delivery is synchronous with respect to the mutation that produced
// the events for single-goroutine callers: when Attach returns, the
// attach's events have been delivered. Under concurrent attaches an
// event may instead be delivered by whichever goroutine currently holds
// the delivery baton, but always before that batch of Attach calls
// returns.
type Observer interface {
	OnEvent(ev Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev Event)

var _ Observer = ObserverFunc(nil)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// Observe registers an observer for subsequent events. Not safe to call
// concurrently with Attach; register observers during setup.
func (t *Tangle) Observe(o Observer) {
	t.observers = append(t.observers, o)
}

// deliverPending drains the event queue to observers. Called after the
// write lock is released. deliverMu is the delivery baton: it serializes
// observer calls across goroutines, and because events were enqueued in
// ledger order under the write lock and the queue is drained FIFO,
// per-observer delivery order always matches ledger order. The loop
// re-checks the queue after each batch so events enqueued by a
// concurrent mutation while we were delivering are never stranded.
//
// Lock order is deliverMu → t.mu (briefly, to swap the queue out);
// mutations enqueue under t.mu and call deliverPending only after
// releasing it, so the reverse order never occurs.
func (t *Tangle) deliverPending() {
	t.deliverMu.Lock()
	defer t.deliverMu.Unlock()
	for {
		t.mu.Lock()
		events := t.pendingEvents
		t.pendingEvents = nil
		t.mu.Unlock()
		if len(events) == 0 {
			return
		}
		for _, ev := range events {
			for _, o := range t.observers {
				o.OnEvent(ev)
			}
		}
	}
}
