package tangle

import (
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// EventKind classifies ledger events surfaced to observers.
type EventKind int

const (
	// EventConfirmed fires when a transaction's cumulative weight
	// crosses the confirmation threshold.
	EventConfirmed EventKind = iota + 1
	// EventLazyTips fires when a submission approves two stale,
	// already-approved parents (§III "lazy tips").
	EventLazyTips
	// EventDoubleSpend fires when a transfer conflicts with an earlier
	// spend of the same (account, seq) resource (§III).
	EventDoubleSpend
	// EventRejected fires when a transaction loses conflict resolution.
	EventRejected
	// EventApproved fires for each parent of a newly attached
	// transaction; Weight carries the parent's updated validation weight
	// w_k = 1 + direct approvers (consumed by the credit ledger, which
	// measures CrP by transaction weight).
	EventApproved
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventConfirmed:
		return "confirmed"
	case EventLazyTips:
		return "lazy-tips"
	case EventDoubleSpend:
		return "double-spend"
	case EventRejected:
		return "rejected"
	case EventApproved:
		return "approved"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is a ledger occurrence. Node is the account the event is
// attributed to (for malicious events, the offender).
type Event struct {
	Kind    EventKind
	Node    identity.Address
	Tx      hashutil.Hash
	Related []hashutil.Hash
	At      time.Time
	// Weight is set on EventApproved: the parent's updated w_k.
	Weight float64
}

// Observer receives ledger events. Events are delivered synchronously
// while the ledger lock is held, so event order always matches ledger
// order; implementations must therefore not call back into the Tangle
// from OnEvent — queue work instead.
type Observer interface {
	OnEvent(ev Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev Event)

var _ Observer = ObserverFunc(nil)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// Observe registers an observer for subsequent events. Not safe to call
// concurrently with Attach; register observers during setup.
func (t *Tangle) Observe(o Observer) {
	t.observers = append(t.observers, o)
}

// notifyLocked delivers events to observers. Called with t.mu held; the
// Observer contract forbids re-entry, so holding the lock is safe and
// keeps event order identical to ledger order.
func (t *Tangle) notifyLocked(events []Event) {
	for _, ev := range events {
		for _, o := range t.observers {
			o.OnEvent(ev)
		}
	}
}
