package tangle

import "github.com/b-iot/biot/internal/metrics"

// Metrics is the ledger's observability surface: gauges tracking the
// anchored tip-selection machinery so a deployment can see that walk
// cost stays bounded as the tangle grows (and notice when it does not —
// e.g. WalkFallbacks climbing means the anchor region is being starved
// or pruned too aggressively).
type Metrics struct {
	// AnchorHeight is the DAG height of the tallest current walk
	// anchor — how far the confirmed frontier has moved from genesis.
	AnchorHeight *metrics.Gauge
	// AnchorCount is the current size of the anchor set.
	AnchorCount *metrics.Gauge
	// WalkLength is the step count of the most recent weighted walk;
	// WalkLengthMax is the peak observed since start. Bounded walk
	// length as Size grows is the whole point of anchoring.
	WalkLength    *metrics.Gauge
	WalkLengthMax *metrics.Gauge
	// WalkFallbacks counts anchored walks that ended off-tip and were
	// restarted from genesis (the correctness fallback).
	WalkFallbacks *metrics.Counter
	// GenesisWalks counts weighted walks that started at genesis
	// because no usable anchor existed (fresh tangle, or anchors all
	// pruned/rejected).
	GenesisWalks *metrics.Counter

	// Memory-footprint gauges for the hot/cold split (cold.go).
	// ResidentVertices is the live in-memory vertex count;
	// BoundaryRoots the pruned IDs pinned as boundary roots; ColdTotal
	// the distinct IDs pruned over the node's lifetime (on disk when a
	// cold store is installed). Flat ResidentVertices and BoundaryRoots
	// under load with pruning enabled is the bounded-memory invariant.
	ResidentVertices *metrics.Gauge
	BoundaryRoots    *metrics.Gauge
	ColdTotal        *metrics.Gauge
	// ColdErrors counts cold-index I/O failures (membership checks
	// degraded to "not cold", or a snapshot round skipped).
	ColdErrors *metrics.Counter
}

func newMetrics() Metrics {
	return Metrics{
		AnchorHeight:     &metrics.Gauge{},
		AnchorCount:      &metrics.Gauge{},
		WalkLength:       &metrics.Gauge{},
		WalkLengthMax:    &metrics.Gauge{},
		WalkFallbacks:    &metrics.Counter{},
		GenesisWalks:     &metrics.Counter{},
		ResidentVertices: &metrics.Gauge{},
		BoundaryRoots:    &metrics.Gauge{},
		ColdTotal:        &metrics.Gauge{},
		ColdErrors:       &metrics.Counter{},
	}
}

// Metrics exposes the ledger's gauges and counters. The contained
// pointers are shared: reading them is always safe, concurrent with any
// tangle operation.
func (t *Tangle) Metrics() Metrics { return t.met }
