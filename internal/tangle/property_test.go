package tangle

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// TestRandomizedOperationsPreserveInvariants drives the tangle with a
// randomized mix of operations — honest attachments, double spends,
// lazy attachments, time jumps, both tip strategies — and checks the
// DESIGN.md §5 invariants after every step:
//
//  1. acyclicity (attachment order is topological);
//  2. cumulative weight is monotone;
//  3. confirmed status is sticky;
//  4. the tip pool never empties and never contains a rejected tx;
//  5. at most one spender per (account, seq) is non-rejected;
//  6. Size/Tips bookkeeping matches a recount.
func TestRandomizedOperationsPreserveInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomizedOps(t, seed, 150)
		})
	}
}

type propState struct {
	weights   map[hashutil.Hash]int
	confirmed map[hashutil.Hash]bool
	all       []hashutil.Hash
}

func runRandomizedOps(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.Seed = seed
	tg, key := newTangle(t, cfg, vc)

	spenders := make([]*identity.KeyPair, 3)
	for i := range spenders {
		spenders[i] = mustKey(t)
	}
	seqs := make([]uint64, len(spenders))

	st := &propState{
		weights:   make(map[hashutil.Hash]int),
		confirmed: make(map[hashutil.Hash]bool),
	}
	for _, id := range tg.Genesis() {
		st.all = append(st.all, id)
	}

	var staleTrunk, staleBranch hashutil.Hash

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // honest data attachment
			strategy := StrategyUniform
			if rng.Intn(2) == 0 {
				strategy = StrategyWeightedWalk
			}
			trunk, branch, err := tg.SelectTips(strategy)
			if err != nil {
				t.Fatalf("step %d: select: %v", step, err)
			}
			tx := buildTx(t, key, trunk, branch, fmt.Sprintf("d-%d", step))
			info, err := tg.Attach(tx)
			if err != nil {
				t.Fatalf("step %d: attach: %v", step, err)
			}
			st.all = append(st.all, info.ID)
		case op < 7: // transfer, sometimes a deliberate double spend
			sp := rng.Intn(len(spenders))
			seq := seqs[sp]
			if rng.Intn(3) == 0 && seq > 0 {
				seq-- // conflict with the previous spend
			} else {
				seqs[sp]++
			}
			trunk, branch, err := tg.SelectTips(StrategyUniform)
			if err != nil {
				t.Fatalf("step %d: select: %v", step, err)
			}
			tx := transferTx(t, spenders[sp], trunk, branch,
				key.Address(), uint64(rng.Intn(50)+1), seq)
			info, err := tg.Attach(tx)
			if err != nil {
				t.Fatalf("step %d: transfer attach: %v", step, err)
			}
			st.all = append(st.all, info.ID)
		case op < 8: // lazy attachment against remembered stale parents
			if staleTrunk.IsZero() {
				continue
			}
			tx := buildTx(t, key, staleTrunk, staleBranch, fmt.Sprintf("lazy-%d", step))
			info, err := tg.Attach(tx)
			if err != nil {
				t.Fatalf("step %d: lazy attach: %v", step, err)
			}
			st.all = append(st.all, info.ID)
		case op < 9: // remember the current tips for later lazy use
			trunk, branch, err := tg.SelectTips(StrategyUniform)
			if err != nil {
				t.Fatalf("step %d: select: %v", step, err)
			}
			staleTrunk, staleBranch = trunk, branch
		default: // time advances
			vc.Advance(time.Duration(rng.Intn(40)) * time.Second)
		}
		checkInvariants(t, tg, st, step)
	}
}

func checkInvariants(t *testing.T, tg *Tangle, st *propState, step int) {
	t.Helper()

	// 1. Topological export order.
	seen := make(map[hashutil.Hash]bool)
	exported := tg.Export()
	for _, tx := range exported {
		if tx.Kind != txn.KindGenesis {
			if !seen[tx.Trunk] || !seen[tx.Branch] {
				t.Fatalf("step %d: topological order violated", step)
			}
		}
		seen[tx.ID()] = true
	}

	// 2 & 3. Weight monotone, confirmation sticky.
	for _, id := range st.all {
		info, err := tg.InfoOf(id)
		if err != nil {
			t.Fatalf("step %d: info %s: %v", step, id.Short(), err)
		}
		if info.CumulativeWeight < st.weights[id] {
			t.Fatalf("step %d: weight of %s shrank %d → %d",
				step, id.Short(), st.weights[id], info.CumulativeWeight)
		}
		st.weights[id] = info.CumulativeWeight
		if st.confirmed[id] && info.Status != StatusConfirmed {
			t.Fatalf("step %d: %s regressed from confirmed", step, id.Short())
		}
		if info.Status == StatusConfirmed {
			st.confirmed[id] = true
		}
	}

	// 4. Tip pool sane.
	tips := tg.Tips()
	if len(tips) == 0 {
		t.Fatalf("step %d: empty tip pool", step)
	}
	for _, id := range tips {
		info, err := tg.InfoOf(id)
		if err != nil {
			t.Fatalf("step %d: tip info: %v", step, err)
		}
		if info.Status == StatusRejected {
			t.Fatalf("step %d: rejected tx %s in tip pool", step, id.Short())
		}
	}

	// 4b. Anchored and genesis-started weighted walks agree on what a
	// valid result is: both always land on current tips.
	inPool := make(map[hashutil.Hash]bool, len(tips))
	for _, id := range tips {
		inPool[id] = true
	}
	for name, sel := range map[string]func(TipStrategy) (hashutil.Hash, hashutil.Hash, error){
		"anchored": tg.SelectTips,
		"genesis":  tg.SelectTipsGenesisWalk,
	} {
		trunk, branch, err := sel(StrategyWeightedWalk)
		if err != nil {
			t.Fatalf("step %d: %s walk: %v", step, name, err)
		}
		if !inPool[trunk] || !inPool[branch] {
			t.Fatalf("step %d: %s walk returned non-tip", step, name)
		}
	}

	// 5. Conflict groups have at most one survivor.
	counted := make(map[txn.SpendKey]int)
	for _, tx := range exported {
		if tx.Kind != txn.KindTransfer {
			continue
		}
		tr, err := txn.TransferOf(tx)
		if err != nil {
			continue
		}
		info, err := tg.InfoOf(tx.ID())
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != StatusRejected {
			counted[txn.SpendKeyOf(tx, tr)]++
		}
	}
	for k, n := range counted {
		if n > 1 {
			t.Fatalf("step %d: %d non-rejected spenders of seq %d", step, n, k.Seq)
		}
	}

	// 6. Bookkeeping matches recount.
	if got := tg.Size(); got != len(exported) {
		t.Fatalf("step %d: Size %d != export %d", step, got, len(exported))
	}
	stats := tg.StatsNow()
	if stats.Tips != len(tips) {
		t.Fatalf("step %d: stats tips %d != %d", step, stats.Tips, len(tips))
	}
}
