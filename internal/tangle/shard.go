package tangle

import (
	"sort"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// Shard namespaces partition the attachment order, not the DAG: every
// vertex is tagged with the namespace it was admitted into (0 = control
// plane: genesis and authorization lists, globally replicated; >= 1 =
// region data shards), and each namespace keeps its own attachment
// order so the cursor-paged sync protocol can page one region's history
// without walking the others. Approval edges freely cross namespaces —
// a data transaction may approve a control-plane tip — so confirmation
// weight and conflict resolution stay global.

// ShardOf returns the namespace the attached vertex was admitted into;
// ok is false for unknown IDs.
func (t *Tangle) ShardOf(id hashutil.Hash) (shard uint32, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.vertices[id]
	if !ok {
		return 0, false
	}
	return v.shard, true
}

// ShardSize returns the number of resident vertices in the namespace.
func (t *Tangle) ShardSize(shard uint32) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.shardOrder[shard])
}

// Shards returns the namespaces with at least one resident vertex, in
// ascending order.
func (t *Tangle) Shards() []uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]uint32, 0, len(t.shardOrder))
	for s, ids := range t.shardOrder {
		if len(ids) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResidentByShard returns the resident vertex count per namespace
// (namespaces with zero residents are omitted).
func (t *Tangle) ResidentByShard() map[uint32]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint32]int, len(t.shardOrder))
	for s, ids := range t.shardOrder {
		if len(ids) > 0 {
			out[s] = len(ids)
		}
	}
	return out
}

// ExportShardRange returns up to limit transactions starting at index
// from of the namespace's attachment order — the shard-scoped analogue
// of ExportRange, with the same paging tolerance: a snapshot between
// pages compacts the order and consumers repair via dedup on attach.
func (t *Tangle) ExportShardRange(shard uint32, from, limit int) []*txn.Transaction {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := t.shardOrder[shard]
	if from < 0 {
		from = 0
	}
	if from >= len(ids) || limit <= 0 {
		return nil
	}
	end := from + limit
	if end > len(ids) {
		end = len(ids)
	}
	out := make([]*txn.Transaction, 0, end-from)
	for _, id := range ids[from:end] {
		out = append(out, t.vertices[id].tx.Clone())
	}
	return out
}

// OrderedShardIDs returns up to limit attached transaction IDs starting
// at index from of the namespace's attachment order — the ID-only
// companion of ExportShardRange.
func (t *Tangle) OrderedShardIDs(shard uint32, from, limit int) []hashutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := t.shardOrder[shard]
	if from < 0 {
		from = 0
	}
	if from >= len(ids) || limit <= 0 {
		return nil
	}
	end := from + limit
	if end > len(ids) {
		end = len(ids)
	}
	out := make([]hashutil.Hash, end-from)
	copy(out, ids[from:end])
	return out
}
