package tangle

import (
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
)

func TestShardOrderPartitionsAttachmentOrder(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)

	var ids [3][]hashutil.Hash
	for i := 0; i < 30; i++ {
		shard := uint32(i % 3)
		trunk, branch, err := tg.SelectTips(StrategyUniform)
		if err != nil {
			t.Fatalf("select tips: %v", err)
		}
		info, err := tg.AttachShard(buildTx(t, key, trunk, branch, fmt.Sprintf("s%d-%d", shard, i)), shard)
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		ids[shard] = append(ids[shard], info.ID)
	}

	// Genesis lives in the control namespace.
	if got := tg.ShardSize(0); got != 10+2 {
		t.Fatalf("shard 0 size = %d, want 12", got)
	}
	for s := uint32(1); s < 3; s++ {
		if got := tg.ShardSize(s); got != 10 {
			t.Fatalf("shard %d size = %d, want 10", s, got)
		}
	}
	if got, want := fmt.Sprint(tg.Shards()), "[0 1 2]"; got != want {
		t.Fatalf("Shards() = %s, want %s", got, want)
	}
	res := tg.ResidentByShard()
	if res[0] != 12 || res[1] != 10 || res[2] != 10 {
		t.Fatalf("ResidentByShard() = %v", res)
	}

	// Per-shard order preserves attachment order and carries only that
	// shard's vertices; export pages agree with the ID pages.
	for s := uint32(1); s < 3; s++ {
		got := tg.OrderedShardIDs(s, 0, 100)
		if len(got) != len(ids[s]) {
			t.Fatalf("shard %d: %d ids, want %d", s, len(got), len(ids[s]))
		}
		for i, id := range got {
			if id != ids[s][i] {
				t.Fatalf("shard %d: order mismatch at %d", s, i)
			}
			if sh, ok := tg.ShardOf(id); !ok || sh != s {
				t.Fatalf("ShardOf(%s) = %d,%v, want %d", id.Short(), sh, ok, s)
			}
		}
		txs := tg.ExportShardRange(s, 2, 4)
		if len(txs) != 4 {
			t.Fatalf("shard %d export page: %d txs, want 4", s, len(txs))
		}
		for i, tx := range txs {
			if tx.ID() != ids[s][2+i] {
				t.Fatalf("shard %d export page mismatch at %d", s, i)
			}
		}
	}

	// Paging past the end and empty namespaces return nil.
	if tg.OrderedShardIDs(1, 100, 10) != nil || tg.ExportShardRange(9, 0, 10) != nil {
		t.Fatal("out-of-range pages must be nil")
	}
}

func TestShardOrderSurvivesSnapshot(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 2
	tg, key := newTangle(t, cfg, clk)

	for i := 0; i < 40; i++ {
		shard := uint32(1 + i%2)
		trunk, branch, err := tg.SelectTips(StrategyUniform)
		if err != nil {
			t.Fatalf("select tips: %v", err)
		}
		if _, err := tg.AttachShard(buildTx(t, key, trunk, branch, fmt.Sprintf("s%d-%d", shard, i)), shard); err != nil {
			t.Fatalf("attach: %v", err)
		}
		clk.Advance(time.Second)
	}

	before := tg.ResidentByShard()
	dropped := tg.Snapshot(clk.Now(), 5*time.Second)
	if dropped == 0 {
		t.Fatal("snapshot dropped nothing; test shape is wrong")
	}

	// The per-shard orders must shrink consistently with the global
	// resident set: every surviving ID is still resident and tagged with
	// its shard, and the per-shard totals sum to the ledger size.
	after := tg.ResidentByShard()
	total := 0
	for s, n := range after {
		total += n
		if n > before[s] {
			t.Fatalf("shard %d grew across snapshot: %d -> %d", s, before[s], n)
		}
		for _, id := range tg.OrderedShardIDs(s, 0, 1<<20) {
			if sh, ok := tg.ShardOf(id); !ok || sh != s {
				t.Fatalf("stale id %s in shard %d order after snapshot", id.Short(), s)
			}
		}
	}
	if total != tg.Size() {
		t.Fatalf("shard totals %d != ledger size %d after snapshot", total, tg.Size())
	}
}
