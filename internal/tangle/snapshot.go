package tangle

import (
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// Local snapshots bound ledger memory — the storage-growth half of the
// paper's §VIII "storage limitations" problem (the durability half is
// internal/store). Old, confirmed, fully-approved transactions are
// dropped from the in-memory DAG; only their 32-byte IDs are retained in
// a snapshotted set, preserving three safety properties:
//
//  1. duplicate suppression — a dropped transaction cannot be re-attached;
//  2. double-spend finality — a new spend conflicting with a dropped
//     (confirmed) spender still loses: the spend index outlives the
//     vertex and a snapshotted group member always wins resolution;
//  3. lazy-tip hygiene — attaching to a snapshotted parent is rejected
//     outright (ErrSnapshottedParent): honest devices approve tips,
//     which are never snapshotted, so only attackers pinning ancient
//     parents and out-of-date sync peers ever see this error.
//
// The trade-off, as with IOTA's local snapshots: a freshly joining node
// cannot replay pre-snapshot history from a snapshotted peer; it must
// bootstrap from a full peer (or a snapshot exchange, which this
// implementation leaves to deployments).

// ErrSnapshottedParent reports an attachment to a pruned parent.
var ErrSnapshottedParent = errors.New("parent transaction was snapshotted away")

// Snapshot drops confirmed transactions attached before now−keep whose
// direct approvers are all themselves confirmed or rejected. Genesis and
// tips are always retained. It returns the number of dropped vertices.
func (t *Tangle) Snapshot(now time.Time, keep time.Duration) int {
	cutoff := now.Add(-keep)

	t.mu.Lock()
	defer t.mu.Unlock()

	var drop []hashutil.Hash
	for id, v := range t.vertices {
		if v.status != StatusConfirmed || v.tx.Kind == txn.KindGenesis {
			continue
		}
		if _, isTip := t.tips[id]; isTip {
			continue
		}
		if !v.attachedAt.Before(cutoff) {
			continue
		}
		settled := true
		for _, aid := range v.approvers {
			a, ok := t.vertices[aid]
			if ok && a.status == StatusPending {
				settled = false
				break
			}
		}
		if settled {
			drop = append(drop, id)
		}
	}
	if len(drop) == 0 {
		return 0
	}

	for _, id := range drop {
		delete(t.vertices, id)
		t.snapshotted[id] = struct{}{}
		// Every dropped vertex was confirmed; keep the incremental
		// stats and the anchor invariant (anchors are live) intact.
		t.nConfirmed--
		t.dropAnchorLocked(id)
	}

	// Rebuild the attachment order, kind indexes and first-approval
	// queue without the dropped vertices.
	retained := t.order[:0]
	for _, id := range t.order {
		if _, ok := t.vertices[id]; ok {
			retained = append(retained, id)
		}
	}
	t.order = retained
	for kind, ids := range t.byKind {
		kept := ids[:0]
		for _, id := range ids {
			if _, ok := t.vertices[id]; ok {
				kept = append(kept, id)
			}
		}
		t.byKind[kind] = kept
	}
	approved := t.approvedOrder[:0]
	for _, id := range t.approvedOrder[t.approvedHead:] {
		if _, ok := t.vertices[id]; ok {
			approved = append(approved, id)
		}
	}
	t.approvedOrder = approved
	t.approvedHead = 0
	return len(drop)
}

// Restore re-inserts a journaled transaction during crash recovery,
// tolerating parents that a pre-crash snapshot folded away. The journal
// is written in attachment order and recovery truncates only its tail,
// so when a replayed record's parent is absent the only possible cause
// is journal compaction after a snapshot — the record sat on the
// snapshot boundary of the pre-crash node. Restore reconstructs that
// state: the missing parent's ID enters the snapshotted set (duplicate
// suppression and ErrSnapshottedParent semantics survive the restart)
// and the child attaches as a pruned-boundary root, exactly the dangling
// shape Snapshot leaves behind on a live node.
//
// Restore is for replaying the node's own trusted journal ONLY. Gossip
// and sync admission must keep using Attach, where an unknown parent is
// an ordering problem (defer) and a snapshotted parent a rejection —
// otherwise a malicious peer could graft orphan subtangles past the
// parent checks.
func (t *Tangle) Restore(tx *txn.Transaction) (Info, error) {
	t.mu.Lock()
	info, err := t.restoreLocked(tx)
	t.mu.Unlock()
	if err == nil {
		t.deliverPending()
	}
	return info, err
}

func (t *Tangle) restoreLocked(tx *txn.Transaction) (Info, error) {
	id := tx.ID()
	if _, dup := t.vertices[id]; dup {
		return Info{}, fmt.Errorf("%w: %s", ErrDuplicate, id.Short())
	}
	if _, snap := t.snapshotted[id]; snap {
		return Info{}, fmt.Errorf("%w: %s (snapshotted)", ErrDuplicate, id.Short())
	}
	trunk := t.vertices[tx.Trunk]
	branch := t.vertices[tx.Branch]
	if trunk == nil {
		t.snapshotted[tx.Trunk] = struct{}{}
	}
	if branch == nil {
		t.snapshotted[tx.Branch] = struct{}{}
	}
	return t.insertLocked(tx, id, trunk, branch), nil
}

// SnapshottedCount returns how many transaction IDs live only in the
// snapshot set.
func (t *Tangle) SnapshottedCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.snapshotted)
}

// WasSnapshotted reports whether id was pruned by a local snapshot.
func (t *Tangle) WasSnapshotted(id hashutil.Hash) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.snapshotted[id]
	return ok
}
