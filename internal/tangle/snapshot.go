package tangle

import (
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// Local snapshots bound ledger memory — the storage-growth half of the
// paper's §VIII "storage limitations" problem (the durability half is
// internal/store). Old, confirmed, fully-approved transactions are
// dropped from the in-memory DAG and move to the cold region (see
// cold.go): boundary roots stay pinned in memory while everything
// deeper is remembered only by the store-backed membership index. Three
// safety properties survive pruning:
//
//  1. duplicate suppression — a dropped transaction cannot be re-attached;
//  2. double-spend finality — a new spend conflicting with a dropped
//     (confirmed) spender still loses: the spend index outlives the
//     vertex and a cold group member always wins resolution;
//  3. lazy-tip hygiene — attaching to a pruned parent is rejected
//     outright (ErrSnapshottedParent): honest devices approve tips,
//     which are never snapshotted, so only attackers pinning ancient
//     parents and out-of-date sync peers ever see this error.
//
// A freshly joining node no longer needs a full-history peer: it can
// seed the boundary roots from a peer's snapshot manifest (see
// BeginBootstrap and the node-layer bootstrap protocol) and replay only
// the live region — O(frontier) instead of O(history).

// ErrSnapshottedParent reports an attachment to a pruned parent.
var ErrSnapshottedParent = errors.New("parent transaction was snapshotted away")

// Snapshot drops confirmed transactions attached before now−keep whose
// direct approvers are all themselves confirmed or rejected. Genesis,
// tips and authorization lists are always retained. It returns the
// number of dropped vertices. Equivalent to SnapshotEpoch with a zero
// interval (node-local cutoff, no cross-node coordination).
func (t *Tangle) Snapshot(now time.Time, keep time.Duration) int {
	return t.SnapshotEpoch(now, keep, 0)
}

// SnapshotEpoch is Snapshot with the cutoff quantized down to a
// multiple of interval (in absolute time, per time.Time.Truncate), so
// every node pruning with the same interval cuts at the same settled
// boundary regardless of when its own compaction loop happens to fire.
// Coordinated boundaries keep peers' snapshot manifests interchangeable
// — a bootstrapping node can verify one peer's manifest against
// another's live region. A zero interval disables quantization.
//
// Candidate selection is incremental: the attachment order is scanned
// from the oldest end and stops at the first vertex attached at or
// after the cutoff (clock stamps are non-decreasing, so the order is
// chronological). The cost is O(pre-cutoff prefix), not O(all
// vertices); the prefix is short in steady state because previous
// snapshots already emptied it.
func (t *Tangle) SnapshotEpoch(now time.Time, keep time.Duration, interval time.Duration) int {
	cutoff := now.Add(-keep)
	if interval > 0 {
		cutoff = cutoff.Truncate(interval)
	}

	t.mu.Lock()
	defer t.mu.Unlock()

	var drop []hashutil.Hash
	for _, id := range t.order {
		v := t.vertices[id]
		if !v.attachedAt.Before(cutoff) {
			break // order is chronological: nothing later qualifies
		}
		if v.status != StatusConfirmed || retainedKind(v.tx.Kind) {
			continue
		}
		if _, isTip := t.tips[id]; isTip {
			continue
		}
		settled := true
		for _, aid := range v.approvers {
			a, ok := t.vertices[aid]
			if ok && a.status == StatusPending {
				settled = false
				break
			}
		}
		if settled {
			drop = append(drop, id)
		}
	}
	if len(drop) == 0 {
		return 0
	}

	// Persist membership before mutating: if the cold index cannot
	// accept the batch, skip this round rather than prune IDs the node
	// would then forget.
	if t.cold != nil {
		if err := t.cold.AddBatch(drop, cutoff); err != nil {
			t.met.ColdErrors.Inc()
			return 0
		}
	}

	for _, id := range drop {
		delete(t.vertices, id)
		t.markColdLocked(id)
		// Every dropped vertex was confirmed; keep the incremental
		// stats and the anchor invariant (anchors are live) intact.
		t.nConfirmed--
		t.dropAnchorLocked(id)
	}
	t.nCold += len(drop)
	t.coldEpoch = cutoff

	// Rebuild the attachment order, kind indexes and first-approval
	// queue without the dropped vertices, and recompute the boundary
	// roots: pruned parents still referenced by a live vertex. IDs
	// whose last live child was dropped this round leave the boundary —
	// the departed set is persisted (or kept in the fallback) so cold
	// membership survives the demotion.
	departed := t.boundary
	t.boundary = make(map[hashutil.Hash]struct{})
	retained := t.order[:0]
	for _, id := range t.order {
		v, ok := t.vertices[id]
		if !ok {
			continue
		}
		retained = append(retained, id)
		if v.tx.Kind == txn.KindGenesis {
			continue
		}
		for _, pid := range [...]hashutil.Hash{v.tx.Trunk, v.tx.Branch} {
			if _, live := t.vertices[pid]; !live {
				t.boundary[pid] = struct{}{}
				delete(departed, pid)
			}
		}
	}
	t.order = retained
	if len(departed) > 0 && t.cold != nil {
		ids := make([]hashutil.Hash, 0, len(departed))
		for id := range departed {
			ids = append(ids, id)
		}
		if err := t.cold.AddBatch(ids, cutoff); err != nil {
			// Membership would be lost on failure: keep the departed
			// IDs pinned in the boundary instead.
			t.met.ColdErrors.Inc()
			for id := range departed {
				t.boundary[id] = struct{}{}
			}
		}
	}
	for kind, ids := range t.byKind {
		kept := ids[:0]
		for _, id := range ids {
			if _, ok := t.vertices[id]; ok {
				kept = append(kept, id)
			}
		}
		t.byKind[kind] = kept
	}
	for shard, ids := range t.shardOrder {
		kept := ids[:0]
		for _, id := range ids {
			if _, ok := t.vertices[id]; ok {
				kept = append(kept, id)
			}
		}
		t.shardOrder[shard] = kept
	}
	approved := t.approvedOrder[:0]
	for _, id := range t.approvedOrder[t.approvedHead:] {
		if _, ok := t.vertices[id]; ok {
			approved = append(approved, id)
		}
	}
	t.approvedOrder = approved
	t.approvedHead = 0
	t.updateMemGaugesLocked()
	return len(drop)
}

// Restore re-inserts a journaled transaction during crash recovery,
// tolerating parents that a pre-crash snapshot folded away. The journal
// is written in attachment order and recovery truncates only its tail,
// so when a replayed record's parent is absent the only possible cause
// is journal compaction after a snapshot — the record sat on the
// snapshot boundary of the pre-crash node. Restore reconstructs that
// state: the missing parent's ID enters the boundary-root set
// (duplicate suppression and ErrSnapshottedParent semantics survive the
// restart) and the child attaches as a pruned-boundary root, exactly
// the dangling shape Snapshot leaves behind on a live node.
//
// Restore is for replaying the node's own trusted journal ONLY. Gossip
// and sync admission must keep using Attach, where an unknown parent is
// an ordering problem (defer) and a snapshotted parent a rejection —
// otherwise a malicious peer could graft orphan subtangles past the
// parent checks. (Bootstrap from a peer's manifest goes through
// BeginBootstrap, which widens Attach only for the manifest's boundary
// roots.)
func (t *Tangle) Restore(tx *txn.Transaction) (Info, error) {
	return t.RestoreShard(tx, 0)
}

// RestoreShard is Restore with the vertex tagged into the given tangle
// namespace (journal records carry no shard tag, so the replay layer
// re-derives the namespace from the transaction kind and the node's
// own shard assignment).
func (t *Tangle) RestoreShard(tx *txn.Transaction, shard uint32) (Info, error) {
	t.mu.Lock()
	info, err := t.restoreLocked(tx, shard)
	t.mu.Unlock()
	if err == nil {
		t.deliverPending()
	}
	return info, err
}

func (t *Tangle) restoreLocked(tx *txn.Transaction, shard uint32) (Info, error) {
	id := tx.ID()
	if _, dup := t.vertices[id]; dup {
		return Info{}, fmt.Errorf("%w: %s", ErrDuplicate, id.Short())
	}
	if t.wasColdLocked(id) {
		return Info{}, fmt.Errorf("%w: %s (snapshotted)", ErrDuplicate, id.Short())
	}
	trunk := t.vertices[tx.Trunk]
	branch := t.vertices[tx.Branch]
	if trunk == nil {
		t.restoreBoundaryLocked(tx.Trunk)
	}
	if branch == nil {
		t.restoreBoundaryLocked(tx.Branch)
	}
	info := t.insertLocked(tx, id, trunk, branch, shard)
	t.updateMemGaugesLocked()
	return info, nil
}

// restoreBoundaryLocked pins a missing replayed parent as a boundary
// root. nCold counts distinct pruned IDs, so an ID already known cold
// (second child replayed, or present in a persisted cold index) is not
// recounted.
func (t *Tangle) restoreBoundaryLocked(pid hashutil.Hash) {
	if _, ok := t.boundary[pid]; ok {
		return
	}
	known := t.wasColdLocked(pid)
	t.boundary[pid] = struct{}{}
	t.markColdLocked(pid)
	if !known {
		t.nCold++
	}
}

// SnapshottedCount returns how many distinct transaction IDs have been
// pruned into the cold region over the node's lifetime.
func (t *Tangle) SnapshottedCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nCold
}

// WasSnapshotted reports whether id was pruned by a local snapshot (or
// seeded as a boundary root by bootstrap/restore).
func (t *Tangle) WasSnapshotted(id hashutil.Hash) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.wasColdLocked(id)
}
