package tangle

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
)

// buildSnapshotFixture attaches a linear chain of n transactions, each
// a minute apart, so early ones confirm and age past any cutoff.
func buildSnapshotFixture(t *testing.T, n int) (*Tangle, *clock.Virtual, []Info) {
	t.Helper()
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 3
	tg, key := newTangle(t, cfg, vc)
	var infos []Info
	last := tg.Genesis()[0]
	for i := 0; i < n; i++ {
		vc.Advance(time.Minute)
		tx := buildTx(t, key, last, last, fmt.Sprintf("chain-%d", i))
		info, err := tg.Attach(tx)
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
		last = info.ID
	}
	return tg, vc, infos
}

func TestSnapshotDropsOldConfirmed(t *testing.T) {
	tg, vc, infos := buildSnapshotFixture(t, 20)
	before := tg.Size()
	dropped := tg.Snapshot(vc.Now(), 5*time.Minute)
	if dropped == 0 {
		t.Fatal("nothing dropped")
	}
	if tg.Size() != before-dropped {
		t.Errorf("size = %d, want %d", tg.Size(), before-dropped)
	}
	if tg.SnapshottedCount() != dropped {
		t.Errorf("snapshotted = %d, want %d", tg.SnapshottedCount(), dropped)
	}
	// The earliest transaction is gone but remembered.
	if tg.Contains(infos[0].ID) {
		t.Error("oldest tx still present")
	}
	if !tg.WasSnapshotted(infos[0].ID) {
		t.Error("oldest tx not in snapshot set")
	}
	// Recent and pending transactions survive.
	lastInfo := infos[len(infos)-1]
	if !tg.Contains(lastInfo.ID) {
		t.Error("newest tx dropped")
	}
	// Genesis is always retained.
	for _, g := range tg.Genesis() {
		if !tg.Contains(g) {
			t.Error("genesis dropped")
		}
	}
	if s := tg.StatsNow(); s.Snapshotted != dropped {
		t.Errorf("stats snapshotted = %d", s.Snapshotted)
	}
}

func TestSnapshotKeepsTipsAndPending(t *testing.T) {
	tg, vc, _ := buildSnapshotFixture(t, 10)
	tg.Snapshot(vc.Now(), 0) // most aggressive cutoff
	if tg.TipCount() == 0 {
		t.Fatal("snapshot emptied the tip pool")
	}
	for _, id := range tg.Tips() {
		if !tg.Contains(id) {
			t.Error("tip not contained after snapshot")
		}
	}
	// Everything still present is either unconfirmed, a tip, or a
	// parent of something unconfirmed.
	for _, tx := range tg.Export() {
		info, err := tg.InfoOf(tx.ID())
		if err != nil {
			t.Fatal(err)
		}
		_ = info
	}
}

func TestSnapshotRejectsAttachToPrunedParent(t *testing.T) {
	tg, vc, infos := buildSnapshotFixture(t, 20)
	key := mustKey(t)
	tg.Snapshot(vc.Now(), 5*time.Minute)
	old := infos[0].ID
	if tg.Contains(old) {
		t.Skip("fixture did not prune the oldest tx")
	}
	tx := buildTx(t, key, old, old, "necromancer")
	if _, err := tg.Attach(tx); !errors.Is(err, ErrSnapshottedParent) {
		t.Errorf("err = %v, want ErrSnapshottedParent", err)
	}
}

func TestSnapshotRejectsReattachOfPruned(t *testing.T) {
	tg, vc, infos := buildSnapshotFixture(t, 20)
	tg.Snapshot(vc.Now(), 5*time.Minute)
	pruned, err := func() (Info, error) {
		if tg.Contains(infos[0].ID) {
			return Info{}, errors.New("not pruned")
		}
		return infos[0], nil
	}()
	if err != nil {
		t.Skip(err)
	}
	// Rebuild the identical transaction and try to re-attach: it must be
	// treated as a duplicate, not fresh.
	_ = pruned
	// (The original bytes are gone; this is covered by the snapshotted
	// duplicate check via WasSnapshotted.)
	if !tg.WasSnapshotted(infos[0].ID) {
		t.Error("pruned tx missing from duplicate guard")
	}
}

func TestSnapshotPreservesDoubleSpendFinality(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 2
	tg, key := newTangle(t, cfg, vc)
	spender := mustKey(t)
	g := tg.Genesis()

	// Spend seq 0 and confirm it with follow-on traffic.
	spend, err := tg.Attach(transferTx(t, spender, g[0], g[1], victim(t), 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	last := spend.ID
	for i := 0; i < 4; i++ {
		vc.Advance(time.Minute)
		tx := buildTx(t, key, last, last, fmt.Sprintf("conf-%d", i))
		info, err := tg.Attach(tx)
		if err != nil {
			t.Fatal(err)
		}
		last = info.ID
	}
	info, err := tg.InfoOf(spend.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusConfirmed {
		t.Fatalf("spend not confirmed (weight %d)", info.CumulativeWeight)
	}

	// Snapshot it away.
	vc.Advance(time.Hour)
	tg.Snapshot(vc.Now(), 30*time.Minute)
	if tg.Contains(spend.ID) {
		t.Skip("spend survived the snapshot; nothing to test")
	}

	// A conflicting spend of the same (account, seq) must still lose —
	// against the pruned, confirmed winner.
	trunk, branch, err := tg.SelectTips(StrategyUniform)
	if err != nil {
		t.Fatal(err)
	}
	evil, err := tg.Attach(transferTx(t, spender, trunk, branch, victim(t), 99, 0))
	if err != nil {
		t.Fatal(err)
	}
	evilInfo, err := tg.InfoOf(evil.ID)
	if err != nil {
		t.Fatal(err)
	}
	if evilInfo.Status != StatusRejected {
		t.Errorf("post-snapshot double spend status = %v, want rejected", evilInfo.Status)
	}
}

func TestSnapshotIdempotentAndBounded(t *testing.T) {
	tg, vc, _ := buildSnapshotFixture(t, 30)
	first := tg.Snapshot(vc.Now(), 5*time.Minute)
	second := tg.Snapshot(vc.Now(), 5*time.Minute)
	if second != 0 {
		t.Errorf("second snapshot dropped %d more without new traffic", second)
	}
	if first == 0 {
		t.Error("first snapshot dropped nothing")
	}
	// The ledger still works after snapshotting.
	key := mustKey(t)
	attachOne(t, tg, key, "post-snapshot")
}

func TestSnapshotExportStillTopological(t *testing.T) {
	tg, vc, _ := buildSnapshotFixture(t, 25)
	tg.Snapshot(vc.Now(), 5*time.Minute)
	// Export remains in attachment order; parents of retained txs are
	// either retained (and earlier) or snapshotted.
	seen := make(map[string]bool)
	for _, tx := range tg.Export() {
		seen[tx.ID().Hex()] = true
		if tx.Trunk.IsZero() { // genesis
			continue
		}
		trunkOK := seen[tx.Trunk.Hex()] || tg.WasSnapshotted(tx.Trunk)
		branchOK := seen[tx.Branch.Hex()] || tg.WasSnapshotted(tx.Branch)
		if !trunkOK || !branchOK {
			t.Fatalf("tx %s has a dangling parent after snapshot", tx.ID().Short())
		}
	}
}
