// Package tangle implements the DAG-structured distributed ledger that
// B-IoT is built on (paper §II-B, §IV-A4).
//
// There are no blocks: each transaction is a vertex that approves two
// former transactions ("tips"). New transactions are attached after
// validating their parents; every transaction accumulates weight as newer
// transactions directly or indirectly approve it, and is confirmed once
// its cumulative weight passes a threshold — the tangle analogue of
// Bitcoin's six-block security.
//
// The package also houses the ledger-level detectors for the paper's
// §III threat model: double-spend conflicts (resolved by cumulative
// weight) and lazy-tip behaviour (approving a fixed pair of very old
// transactions). Detections are emitted as Events that the node layer
// feeds into the credit ledger.
package tangle

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/authz"
	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

// Config tunes ledger behaviour.
type Config struct {
	// ConfirmationWeight is the cumulative weight at which a transaction
	// is considered confirmed (irreversible for practical purposes).
	ConfirmationWeight int

	// LazyParentAge: a parent approved this long before attach time is
	// considered "very old"; approving two such parents is lazy-tip
	// behaviour (unless the parents were still tips, i.e. the tangle is
	// quiet).
	LazyParentAge time.Duration

	// Seed seeds tip selection. Zero selects a fixed default so runs
	// are reproducible unless explicitly randomized.
	Seed int64
}

// DefaultConfig returns production-ish defaults: confirmation at
// cumulative weight 5, lazy threshold 30 s.
func DefaultConfig() Config {
	return Config{
		ConfirmationWeight: 5,
		LazyParentAge:      30 * time.Second,
	}
}

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.ConfirmationWeight < 1 {
		return fmt.Errorf("confirmation weight %d must be ≥ 1", c.ConfirmationWeight)
	}
	if c.LazyParentAge <= 0 {
		return fmt.Errorf("lazy parent age %v must be positive", c.LazyParentAge)
	}
	return nil
}

// Status describes a vertex's ledger state.
type Status int

const (
	// StatusPending: attached, accumulating weight.
	StatusPending Status = iota + 1
	// StatusConfirmed: cumulative weight passed the threshold.
	StatusConfirmed
	// StatusRejected: lost a double-spend conflict.
	StatusRejected
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusConfirmed:
		return "confirmed"
	case StatusRejected:
		return "rejected"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

type vertex struct {
	tx         *txn.Transaction
	id         hashutil.Hash
	approvers  []hashutil.Hash
	cumWeight  int
	status     Status
	attachedAt time.Time
	// firstApprovedAt is when the vertex gained its first approver
	// (left the tip pool); zero while still a tip.
	firstApprovedAt time.Time
	// height is the DAG height: 0 for genesis, 1+max(parent heights)
	// otherwise. Walk anchors report it so operators can see how far
	// from genesis the confirmed frontier has moved.
	height int
	// mark is the epoch stamp used by propagateWeightLocked to detect
	// already-visited vertices without allocating a per-attach set.
	mark uint64
	// shard is the tangle namespace the vertex belongs to: 0 for the
	// control plane (genesis, authorization lists), >= 1 for region
	// data shards. Assigned at attach time by the admission layer and
	// immutable afterwards.
	shard uint32
	// authSeq is the admission evidence: the highest authorization-list
	// sequence in this vertex's past cone, maintained incrementally as
	// max(parent authSeqs) — plus the vertex's own decoded sequence when
	// it IS an authorization list. Boundary-rooted vertices (restore,
	// bootstrap) under-approximate toward 0, which is safe: evidence
	// only widens the membership scan (see authz.EvidenceVerdict).
	authSeq uint64
}

// Info is the public view of a vertex.
type Info struct {
	ID               hashutil.Hash
	Sender           identity.Address
	Kind             txn.Kind
	Status           Status
	DirectApprovers  int
	CumulativeWeight int
	AttachedAt       time.Time
}

// Tangle is the DAG ledger. Safe for concurrent use. Mutations
// serialize on the write lock; read paths — including tip selection —
// take only the read lock and therefore run concurrently with each
// other.
type Tangle struct {
	cfg Config
	clk clock.Clock

	mu       sync.RWMutex
	vertices map[hashutil.Hash]*vertex
	tips     map[hashutil.Hash]struct{}
	// tipsSorted mirrors tips in sorted order, maintained incrementally
	// on mutation so SelectTips never re-collects and re-sorts the pool.
	tipsSorted []hashutil.Hash
	order      []hashutil.Hash // attachment order, for sync/export
	// shardOrder mirrors order per namespace: the attachment order of
	// each shard's vertices, for namespace-scoped sync/export. Shard 0
	// (control plane) is always present.
	shardOrder map[uint32][]hashutil.Hash
	byKind     map[txn.Kind][]hashutil.Hash
	spends     map[txn.SpendKey][]hashutil.Hash
	// The cold region left behind by local snapshots (see cold.go and
	// snapshot.go): boundary holds the pruned IDs still referenced as a
	// parent by a live vertex (O(frontier)); cold, when installed, is
	// the store-backed membership index for everything pruned; coldMem
	// is the exact in-memory fallback used when no cold store exists.
	// nCold counts distinct pruned IDs (the old snapshotted-map
	// cardinality); coldEpoch stamps the latest pruning cutoff.
	boundary      map[hashutil.Hash]struct{}
	cold          ColdStore
	coldMem       map[hashutil.Hash]struct{}
	nCold         int
	coldEpoch     time.Time
	bootstrapping bool
	genesis       [2]hashutil.Hash

	// anchors is the moving confirmed-frontier anchor set: recently
	// confirmed vertices that weighted walks start from instead of
	// genesis. Invariant: every anchor is a live (non-snapshotted),
	// non-rejected, confirmed vertex — Snapshot and conflict
	// resolution purge entries that stop qualifying.
	anchors []hashutil.Hash

	// epoch + wstack back the allocation-free weight propagation:
	// vertices visited in the current propagation carry mark == epoch,
	// and the traversal stack is reused across attaches. evscratch is
	// the per-attach event collection buffer, likewise reused (its
	// elements are copied into pendingEvents before the lock drops).
	epoch     uint64
	wstack    []*vertex
	evscratch []Event

	// Incrementally maintained statistics (StatsNow is O(1)).
	nConfirmed int // live vertices with StatusConfirmed (incl. genesis)
	nRejected  int // live vertices with StatusRejected
	nConflicts int // spend keys with more than one recorded spender

	// approvedOrder lists non-genesis vertices in first-approval order
	// (clock stamps are non-decreasing, so append order is
	// chronological); approvedHead skips entries pruned by snapshots.
	// Together they make OldestApproved amortized O(1).
	approvedOrder []hashutil.Hash
	approvedHead  int

	// pendingEvents collects events produced under the write lock;
	// deliverMu serializes their delivery to observers after the lock
	// is released, preserving ledger order (see deliverPending).
	pendingEvents []Event
	deliverMu     sync.Mutex

	// walkers pools per-call RNG + scratch state so tip selection needs
	// no tangle-wide RNG (and hence no write lock). seed/walkerSeq make
	// pooled walker streams reproducible for a fixed Config.Seed.
	walkers   sync.Pool
	seed      int64
	walkerSeq atomic.Uint64

	met Metrics

	observers []Observer
}

// Attach errors.
var (
	ErrDuplicate     = errors.New("transaction already attached")
	ErrUnknownParent = errors.New("parent transaction not in tangle")
	ErrUnknownTx     = errors.New("transaction not in tangle")
)

// GenesisTransactions derives the two genesis transactions for a
// deployment from the manager's public key ("the public key of the
// manager will be hard-coded into genesis config of blockchain"). The
// derivation is deterministic and unsigned — genesis is trusted by fiat
// and pinned, so every full node configured with the same manager key
// computes identical genesis IDs and can sync.
func GenesisTransactions(managerPub identity.PublicKey) [2]*txn.Transaction {
	var out [2]*txn.Transaction
	for i := 0; i < 2; i++ {
		out[i] = &txn.Transaction{
			Kind:      txn.KindGenesis,
			Timestamp: time.Unix(0, 0).UTC(),
			Issuer:    append(identity.PublicKey(nil), managerPub...),
			Payload:   []byte(fmt.Sprintf("b-iot genesis %d", i)),
		}
	}
	return out
}

// New creates a tangle bootstrapped with the two deterministic genesis
// transactions of the deployment identified by managerPub.
func New(cfg Config, managerPub identity.PublicKey, clk clock.Clock) (*Tangle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("tangle config: %w", err)
	}
	if len(managerPub) == 0 {
		return nil, errors.New("tangle requires the manager public key")
	}
	if clk == nil {
		clk = clock.Real()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xB107 // fixed default: reproducible runs
	}
	t := &Tangle{
		cfg:        cfg,
		clk:        clk,
		vertices:   make(map[hashutil.Hash]*vertex),
		tips:       make(map[hashutil.Hash]struct{}),
		shardOrder: make(map[uint32][]hashutil.Hash),
		byKind:     make(map[txn.Kind][]hashutil.Hash),
		spends:     make(map[txn.SpendKey][]hashutil.Hash),
		boundary:   make(map[hashutil.Hash]struct{}),
		coldMem:    make(map[hashutil.Hash]struct{}),
		seed:       seed,
		met:        newMetrics(),
	}
	t.walkers.New = func() any { return t.newWalker() }
	now := clk.Now()
	for i, g := range GenesisTransactions(managerPub) {
		id := g.ID()
		t.vertices[id] = &vertex{
			tx:         g,
			id:         id,
			status:     StatusConfirmed, // genesis is trusted by fiat
			attachedAt: now,
		}
		t.addTipLocked(id)
		t.order = append(t.order, id)
		t.shardOrder[0] = append(t.shardOrder[0], id)
		t.byKind[txn.KindGenesis] = append(t.byKind[txn.KindGenesis], id)
		t.genesis[i] = id
		t.nConfirmed++
	}
	return t, nil
}

// addTipLocked inserts id into the tip pool, keeping the sorted mirror
// in step. O(log n) search + O(n) shift on a pool that stays small.
func (t *Tangle) addTipLocked(id hashutil.Hash) {
	if _, ok := t.tips[id]; ok {
		return
	}
	t.tips[id] = struct{}{}
	i := sort.Search(len(t.tipsSorted), func(i int) bool {
		return t.tipsSorted[i].Compare(id) >= 0
	})
	t.tipsSorted = append(t.tipsSorted, hashutil.Hash{})
	copy(t.tipsSorted[i+1:], t.tipsSorted[i:])
	t.tipsSorted[i] = id
}

// removeTipLocked removes id from the tip pool and its sorted mirror.
func (t *Tangle) removeTipLocked(id hashutil.Hash) {
	if _, ok := t.tips[id]; !ok {
		return
	}
	delete(t.tips, id)
	i := sort.Search(len(t.tipsSorted), func(i int) bool {
		return t.tipsSorted[i].Compare(id) >= 0
	})
	if i < len(t.tipsSorted) && t.tipsSorted[i] == id {
		t.tipsSorted = append(t.tipsSorted[:i], t.tipsSorted[i+1:]...)
	}
}

// Genesis returns the two genesis transaction IDs.
func (t *Tangle) Genesis() [2]hashutil.Hash { return t.genesis }

// Size returns the number of attached transactions (including genesis).
func (t *Tangle) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.vertices)
}

// TipCount returns the current number of tips.
func (t *Tangle) TipCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tips)
}

// Contains reports whether id is attached.
func (t *Tangle) Contains(id hashutil.Hash) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.vertices[id]
	return ok
}

// Get returns the transaction with the given ID.
func (t *Tangle) Get(id hashutil.Hash) (*txn.Transaction, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.vertices[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTx, id.Short())
	}
	return v.tx.Clone(), nil
}

// InfoOf returns the ledger view of the transaction with the given ID.
func (t *Tangle) InfoOf(id hashutil.Hash) (Info, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.vertices[id]
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrUnknownTx, id.Short())
	}
	return t.infoLocked(v), nil
}

func (t *Tangle) infoLocked(v *vertex) Info {
	return Info{
		ID:               v.id,
		Sender:           v.tx.Sender(),
		Kind:             v.tx.Kind,
		Status:           v.status,
		DirectApprovers:  len(v.approvers),
		CumulativeWeight: v.cumWeight,
		AttachedAt:       v.attachedAt,
	}
}

// Weight returns the paper's per-transaction weight w_k used by the
// credit mechanism: 1 + the number of direct approvals the transaction
// has received ("the weight of a transaction means the number of
// validation to this transaction").
func (t *Tangle) Weight(id hashutil.Hash) (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.vertices[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTx, id.Short())
	}
	return 1 + float64(len(v.approvers)), nil
}

// Attach inserts tx into the tangle. The caller (the gateway layer) is
// responsible for signature, PoW and authorization checks; Attach
// enforces structural validity only. Detected lazy-tip behaviour and
// double-spend conflicts are reported through observers; a conflicting
// transaction is still attached (the DAG keeps both branches) but the
// lighter branch is marked rejected.
func (t *Tangle) Attach(tx *txn.Transaction) (Info, error) {
	return t.AttachShard(tx, 0)
}

// AttachShard is Attach with the vertex tagged into the given tangle
// namespace (0 = control plane, >= 1 = region data shards). The DAG
// itself is shared — parents may live in any namespace — only the
// attachment-order indexes are per shard.
func (t *Tangle) AttachShard(tx *txn.Transaction, shard uint32) (Info, error) {
	t.mu.Lock()
	info, err := t.attachLocked(tx, shard)
	t.mu.Unlock()
	if err == nil {
		t.deliverPending()
	}
	return info, err
}

func (t *Tangle) attachLocked(tx *txn.Transaction, shard uint32) (Info, error) {
	id := tx.ID()

	if _, dup := t.vertices[id]; dup {
		return Info{}, fmt.Errorf("%w: %s", ErrDuplicate, id.Short())
	}
	if t.wasColdLocked(id) {
		return Info{}, fmt.Errorf("%w: %s (snapshotted)", ErrDuplicate, id.Short())
	}
	trunk, ok := t.vertices[tx.Trunk]
	if !ok {
		if !t.bootstrapAttachableLocked(tx.Trunk) {
			if t.wasColdLocked(tx.Trunk) {
				return Info{}, fmt.Errorf("%w: trunk %s", ErrSnapshottedParent, tx.Trunk.Short())
			}
			return Info{}, fmt.Errorf("%w: trunk %s", ErrUnknownParent, tx.Trunk.Short())
		}
		trunk = nil // boundary root during bootstrap: attach without the parent
	}
	branch, ok := t.vertices[tx.Branch]
	if !ok {
		if !t.bootstrapAttachableLocked(tx.Branch) {
			if t.wasColdLocked(tx.Branch) {
				return Info{}, fmt.Errorf("%w: branch %s", ErrSnapshottedParent, tx.Branch.Short())
			}
			return Info{}, fmt.Errorf("%w: branch %s", ErrUnknownParent, tx.Branch.Short())
		}
		branch = nil
	}

	info := t.insertLocked(tx, id, trunk, branch, shard)
	t.met.ResidentVertices.Set(int64(len(t.vertices)))
	return info, nil
}

// bootstrapAttachableLocked reports whether a missing parent may be
// attached through anyway: only in bootstrap mode, and only when the
// parent is one of the manifest's seeded boundary roots.
func (t *Tangle) bootstrapAttachableLocked(pid hashutil.Hash) bool {
	if !t.bootstrapping {
		return false
	}
	_, ok := t.boundary[pid]
	return ok
}

// EvidenceSeq derives the admission evidence a transaction with the
// given parents would carry: the highest authorization-list sequence
// in its past cone (the max of the parents' own evidence). ok is false
// when a parent is neither attached nor a bootstrap boundary root —
// the transaction is an orphan and its evidence cannot be resolved
// yet. Boundary roots contribute 0 (a safe under-approximation: it can
// only widen the membership scan, never narrow it).
func (t *Tangle) EvidenceSeq(trunk, branch hashutil.Hash) (seq uint64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, pid := range [...]hashutil.Hash{trunk, branch} {
		v, live := t.vertices[pid]
		if !live {
			if t.bootstrapAttachableLocked(pid) {
				continue // boundary root: pre-epoch history, evidence 0
			}
			return 0, false
		}
		if v.authSeq > seq {
			seq = v.authSeq
		}
	}
	return seq, true
}

// AuthSeqOf reports the attached vertex's admission evidence (the
// highest authorization-list sequence in its past cone); ok is false
// for unknown IDs.
func (t *Tangle) AuthSeqOf(id hashutil.Hash) (seq uint64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.vertices[id]
	if !ok {
		return 0, false
	}
	return v.authSeq, true
}

// insertLocked wires a validated transaction into the DAG. trunk or
// branch may be nil on the Restore path only, meaning that parent was
// folded away by a pre-crash snapshot: the vertex attaches as a
// pruned-boundary root (no approval is credited to the missing parent,
// and its height restarts relative to the boundary).
func (t *Tangle) insertLocked(tx *txn.Transaction, id hashutil.Hash, trunk, branch *vertex, shard uint32) Info {
	now := t.clk.Now()
	lazy := false
	if trunk != nil && branch != nil {
		lazy = t.lazyParentsLocked(trunk, branch, now)
	}

	height := 0
	if trunk != nil {
		height = trunk.height
	}
	if branch != nil && branch.height > height {
		height = branch.height
	}
	authSeq := uint64(0)
	if trunk != nil {
		authSeq = trunk.authSeq
	}
	if branch != nil && branch.authSeq > authSeq {
		authSeq = branch.authSeq
	}
	if tx.Kind == txn.KindAuthorization {
		if list, err := authz.DecodeList(tx.Payload); err == nil && list.Seq > authSeq {
			authSeq = list.Seq
		}
	}
	v := &vertex{
		tx:         tx.Clone(),
		id:         id,
		status:     StatusPending,
		attachedAt: now,
		height:     height + 1,
		shard:      shard,
		authSeq:    authSeq,
	}
	t.vertices[id] = v
	t.order = append(t.order, id)
	t.shardOrder[shard] = append(t.shardOrder[shard], id)
	t.byKind[tx.Kind] = append(t.byKind[tx.Kind], id)

	// Wire approvals and retire approved tips.
	events := t.evscratch[:0]
	for _, p := range [...]*vertex{trunk, branch} {
		if p == nil {
			continue // snapshotted parent on the Restore path
		}
		p.approvers = append(p.approvers, id)
		if p.firstApprovedAt.IsZero() {
			p.firstApprovedAt = now
			if p.tx.Kind != txn.KindGenesis {
				t.approvedOrder = append(t.approvedOrder, p.id)
			}
		}
		t.removeTipLocked(p.id)
		if p.tx.Kind != txn.KindGenesis {
			events = append(events, Event{
				Kind:   EventApproved,
				Node:   p.tx.Sender(),
				Tx:     p.id,
				At:     now,
				Weight: 1 + float64(len(p.approvers)),
			})
		}
		if trunk == branch {
			break // same parent twice: count the approval once
		}
	}
	t.addTipLocked(id)

	// Propagate cumulative weight to all (unfrozen) ancestors and
	// confirm those that cross the threshold.
	events = t.propagateWeightLocked(v, events)

	if lazy {
		events = append(events, Event{
			Kind:    EventLazyTips,
			Node:    tx.Sender(),
			Tx:      id,
			At:      now,
			Related: []hashutil.Hash{tx.Trunk, tx.Branch},
		})
	}

	// Double-spend bookkeeping for transfers.
	if tx.Kind == txn.KindTransfer {
		if tr, err := txn.TransferOf(tx); err == nil {
			events = append(events, t.recordSpendLocked(v, tr, now)...)
		}
	}

	info := t.infoLocked(v)
	t.pendingEvents = append(t.pendingEvents, events...)
	t.evscratch = events[:0] // keep the grown capacity for the next attach
	return info
}

// lazyParentsLocked implements the §III "lazy tips" detector: both
// parents were already approved (left the tip pool) longer ago than
// LazyParentAge. A node approving parents that are still tips is by
// definition contributing, however old those tips are.
func (t *Tangle) lazyParentsLocked(trunk, branch *vertex, now time.Time) bool {
	for _, p := range [...]*vertex{trunk, branch} {
		if p.firstApprovedAt.IsZero() {
			return false // still a tip
		}
		if now.Sub(p.firstApprovedAt) < t.cfg.LazyParentAge {
			return false
		}
	}
	return true
}

// propagateWeightLocked adds 1 to the cumulative weight of every
// ancestor of v, confirming vertices that cross the threshold (their
// confirmation events are appended to events, which is returned).
// Traversal stops at confirmed vertices: their inclusion is already
// final, so their weight is frozen — this bounds attach cost to the
// unconfirmed frontier instead of the whole history.
//
// The traversal is allocation-free: visited vertices are stamped with a
// per-propagation epoch instead of being collected into a set, and the
// stack is reused across attaches.
func (t *Tangle) propagateWeightLocked(v *vertex, events []Event) []Event {
	v.cumWeight++ // own weight

	t.epoch++
	v.mark = t.epoch
	stack := t.wstack[:0]
	push := func(id hashutil.Hash) {
		if a, ok := t.vertices[id]; ok && a.mark != t.epoch {
			a.mark = t.epoch
			stack = append(stack, a)
		}
	}
	push(v.tx.Trunk)
	push(v.tx.Branch)

	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		a.cumWeight++
		if a.status == StatusConfirmed {
			continue // frozen: do not descend further
		}
		if a.cumWeight >= t.cfg.ConfirmationWeight && a.status == StatusPending {
			a.status = StatusConfirmed
			t.nConfirmed++
			t.addAnchorLocked(a)
			events = append(events, Event{
				Kind: EventConfirmed,
				Node: a.tx.Sender(),
				Tx:   a.id,
				At:   t.clk.Now(),
			})
		}
		if a.tx.Kind != txn.KindGenesis {
			push(a.tx.Trunk)
			push(a.tx.Branch)
		}
	}
	t.wstack = stack // keep the grown capacity for the next attach
	return events
}

// Tips returns the current tip IDs in deterministic (sorted) order.
func (t *Tangle) Tips() []hashutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]hashutil.Hash, len(t.tipsSorted))
	copy(out, t.tipsSorted)
	return out
}

// Export returns all transactions in attachment order, for syncing a
// freshly joined full node. The slice and transactions are copies.
// Large tangles should prefer ExportRange, which bounds how long the
// read lock is held per call.
func (t *Tangle) Export() []*txn.Transaction {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*txn.Transaction, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.vertices[id].tx.Clone())
	}
	return out
}

// ExportRange returns up to limit transactions starting at index from
// of the attachment order. Callers page through history with a moving
// offset so no single call holds the read lock for a full-history copy.
// A local snapshot between pages compacts the order (indices shift
// backwards); paged consumers tolerate that — sync deduplicates on
// attach and repairs gaps on the next round.
func (t *Tangle) ExportRange(from, limit int) []*txn.Transaction {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.order) || limit <= 0 {
		return nil
	}
	end := from + limit
	if end > len(t.order) {
		end = len(t.order)
	}
	out := make([]*txn.Transaction, 0, end-from)
	for _, id := range t.order[from:end] {
		out = append(out, t.vertices[id].tx.Clone())
	}
	return out
}

// OrderedIDs returns up to limit attached transaction IDs starting at
// index from of the attachment order — the ID-only companion of
// ExportRange for peers advertising what they already have.
func (t *Tangle) OrderedIDs(from, limit int) []hashutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.order) || limit <= 0 {
		return nil
	}
	end := from + limit
	if end > len(t.order) {
		end = len(t.order)
	}
	out := make([]hashutil.Hash, end-from)
	copy(out, t.order[from:end])
	return out
}

// ByKind returns the transactions of the given kind in attachment
// order, starting at the given offset into that kind's history. Callers
// poll with a moving offset to consume only new messages (the
// key-distribution transport does this).
func (t *Tangle) ByKind(kind txn.Kind, offset int) []*txn.Transaction {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := t.byKind[kind]
	if offset < 0 {
		offset = 0
	}
	if offset >= len(ids) {
		return nil
	}
	out := make([]*txn.Transaction, 0, len(ids)-offset)
	for _, id := range ids[offset:] {
		out = append(out, t.vertices[id].tx.Clone())
	}
	return out
}

// CountByKind returns how many transactions of the given kind are
// attached.
func (t *Tangle) CountByKind(kind txn.Kind) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byKind[kind])
}

// Missing returns, from the given candidate IDs, those not yet attached.
func (t *Tangle) Missing(ids []hashutil.Hash) []hashutil.Hash {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []hashutil.Hash
	for _, id := range ids {
		if _, ok := t.vertices[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

// Stats summarizes ledger state for RPC/monitoring.
type Stats struct {
	Transactions int
	Tips         int
	Confirmed    int
	Rejected     int
	Conflicts    int
	Snapshotted  int
}

// StatsNow returns current ledger statistics. The counters are
// maintained incrementally on mutation, so this is O(1) — no full
// scan, safe to poll from monitoring at any frequency.
func (t *Tangle) StatsNow() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{
		Transactions: len(t.vertices),
		Tips:         len(t.tips),
		Confirmed:    t.nConfirmed,
		Rejected:     t.nRejected,
		Conflicts:    t.nConflicts,
		Snapshotted:  t.nCold,
	}
}
