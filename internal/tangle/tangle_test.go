package tangle

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/txn"
)

func mustKey(t testing.TB) *identity.KeyPair {
	t.Helper()
	k, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate key: %v", err)
	}
	return k
}

func newTangle(t testing.TB, cfg Config, clk clock.Clock) (*Tangle, *identity.KeyPair) {
	t.Helper()
	key := mustKey(t)
	tg, err := New(cfg, key.Public(), clk)
	if err != nil {
		t.Fatalf("new tangle: %v", err)
	}
	return tg, key
}

// buildTx creates a signed transaction approving the given parents.
func buildTx(t testing.TB, key *identity.KeyPair, trunk, branch hashutil.Hash, tag string) *txn.Transaction {
	t.Helper()
	tx := &txn.Transaction{
		Trunk:     trunk,
		Branch:    branch,
		Timestamp: time.Unix(1_700_000_000, 0),
		Kind:      txn.KindData,
		Payload:   []byte(tag),
	}
	tx.Sign(key)
	return tx
}

// attachOne selects tips and attaches a fresh transaction.
func attachOne(t testing.TB, tg *Tangle, key *identity.KeyPair, tag string) Info {
	t.Helper()
	trunk, branch, err := tg.SelectTips(StrategyUniform)
	if err != nil {
		t.Fatalf("select tips: %v", err)
	}
	info, err := tg.Attach(buildTx(t, key, trunk, branch, tag))
	if err != nil {
		t.Fatalf("attach %s: %v", tag, err)
	}
	return info
}

func TestGenesisDeterministicAcrossNodes(t *testing.T) {
	key := mustKey(t)
	t1, err := New(DefaultConfig(), key.Public(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := New(DefaultConfig(), key.Public(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Genesis() != t2.Genesis() {
		t.Error("same manager key produced different genesis")
	}
	other := mustKey(t)
	t3, err := New(DefaultConfig(), other.Public(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Genesis() == t3.Genesis() {
		t.Error("different manager keys share genesis")
	}
}

func TestNewValidation(t *testing.T) {
	key := mustKey(t)
	if _, err := New(Config{}, key.Public(), nil); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(DefaultConfig(), nil, nil); err == nil {
		t.Error("nil manager key accepted")
	}
}

func TestAttachBasics(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	if tg.Size() != 2 || tg.TipCount() != 2 {
		t.Fatalf("fresh tangle: size=%d tips=%d", tg.Size(), tg.TipCount())
	}
	info := attachOne(t, tg, key, "first")
	if info.Status != StatusPending {
		t.Errorf("status = %v", info.Status)
	}
	if tg.Size() != 3 {
		t.Errorf("size = %d", tg.Size())
	}
	if !tg.Contains(info.ID) {
		t.Error("attached tx not contained")
	}
	got, err := tg.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "first" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestAttachRejectsDuplicates(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	g := tg.Genesis()
	tx := buildTx(t, key, g[0], g[1], "dup")
	if _, err := tg.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Attach(tx); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v, want ErrDuplicate", err)
	}
}

func TestAttachRejectsUnknownParents(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	g := tg.Genesis()
	tx := buildTx(t, key, hashutil.Sum([]byte("missing")), g[0], "orphan")
	if _, err := tg.Attach(tx); !errors.Is(err, ErrUnknownParent) {
		t.Errorf("err = %v, want ErrUnknownParent", err)
	}
}

func TestTipsEvolve(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	g := tg.Genesis()
	// Approve both genesis transactions explicitly: they retire from
	// the tip pool and the new transaction becomes the only tip.
	tx := buildTx(t, key, g[0], g[1], "a")
	info, err := tg.Attach(tx)
	if err != nil {
		t.Fatal(err)
	}
	tips := tg.Tips()
	if len(tips) != 1 || tips[0] != info.ID {
		t.Errorf("tips = %v, want just %v", tips, info.ID)
	}
}

func TestSameParentTwiceCountsOnce(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	g := tg.Genesis()
	tx := buildTx(t, key, g[0], g[0], "same-parent")
	if _, err := tg.Attach(tx); err != nil {
		t.Fatal(err)
	}
	w, err := tg.Weight(g[0])
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 { // 1 + one approval
		t.Errorf("weight = %v, want 2 (single approval)", w)
	}
}

func TestWeightGrowsWithApprovals(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	first := attachOne(t, tg, key, "w0")
	w0, err := tg.Weight(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if w0 != 1 {
		t.Errorf("fresh weight = %v, want 1", w0)
	}
	// Two children approving it directly.
	for i := 0; i < 2; i++ {
		tx := buildTx(t, key, first.ID, first.ID, fmt.Sprintf("child-%d", i))
		if _, err := tg.Attach(tx); err != nil {
			t.Fatal(err)
		}
	}
	w1, err := tg.Weight(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != 3 {
		t.Errorf("weight = %v, want 3", w1)
	}
}

func TestConfirmationByCumulativeWeight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 3
	tg, key := newTangle(t, cfg, nil)

	first := attachOne(t, tg, key, "root")
	// Build a chain on top: each new tx adds cumulative weight to
	// `first`.
	last := first.ID
	for i := 0; i < 3; i++ {
		tx := buildTx(t, key, last, last, fmt.Sprintf("chain-%d", i))
		info, err := tg.Attach(tx)
		if err != nil {
			t.Fatal(err)
		}
		last = info.ID
	}
	info, err := tg.InfoOf(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusConfirmed {
		t.Errorf("status = %v after weight %d, want confirmed", info.Status, info.CumulativeWeight)
	}
	if info.CumulativeWeight < cfg.ConfirmationWeight {
		t.Errorf("cumulative weight = %d", info.CumulativeWeight)
	}
}

// Confirmed set is append-only: once confirmed, never unconfirmed.
func TestConfirmedAppendOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 2
	tg, key := newTangle(t, cfg, nil)
	confirmed := make(map[hashutil.Hash]bool)
	var all []hashutil.Hash
	for i := 0; i < 60; i++ {
		info := attachOne(t, tg, key, fmt.Sprintf("tx-%d", i))
		all = append(all, info.ID)
		for _, id := range all {
			cur, err := tg.InfoOf(id)
			if err != nil {
				t.Fatal(err)
			}
			if confirmed[id] && cur.Status != StatusConfirmed {
				t.Fatalf("tx %s regressed from confirmed to %v", id.Short(), cur.Status)
			}
			if cur.Status == StatusConfirmed {
				confirmed[id] = true
			}
		}
	}
	if len(confirmed) == 0 {
		t.Error("no transaction ever confirmed")
	}
}

// Acyclicity + parent existence: every non-genesis transaction approves
// two transactions that were attached earlier (attachment order is a
// topological order).
func TestTopologicalInvariant(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	for i := 0; i < 50; i++ {
		attachOne(t, tg, key, fmt.Sprintf("tx-%d", i))
	}
	seen := make(map[hashutil.Hash]bool)
	for _, tx := range tg.Export() {
		if tx.Kind != txn.KindGenesis {
			if !seen[tx.Trunk] || !seen[tx.Branch] {
				t.Fatalf("tx %s references a later or missing parent", tx.ID().Short())
			}
		}
		seen[tx.ID()] = true
	}
}

// Cumulative weight is monotone under attachment for every vertex.
func TestCumulativeWeightMonotone(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	weights := make(map[hashutil.Hash]int)
	var all []hashutil.Hash
	for i := 0; i < 40; i++ {
		info := attachOne(t, tg, key, fmt.Sprintf("tx-%d", i))
		all = append(all, info.ID)
		for _, id := range all {
			cur, err := tg.InfoOf(id)
			if err != nil {
				t.Fatal(err)
			}
			if cur.CumulativeWeight < weights[id] {
				t.Fatalf("cumulative weight of %s shrank: %d → %d",
					id.Short(), weights[id], cur.CumulativeWeight)
			}
			weights[id] = cur.CumulativeWeight
		}
	}
}

func TestExportOrderAndMissing(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	a := attachOne(t, tg, key, "a")
	b := attachOne(t, tg, key, "b")
	exported := tg.Export()
	if len(exported) != 4 {
		t.Fatalf("export = %d txs, want 4", len(exported))
	}
	if exported[2].ID() != a.ID || exported[3].ID() != b.ID {
		t.Error("export order is not attachment order")
	}
	missing := tg.Missing([]hashutil.Hash{a.ID, hashutil.Sum([]byte("nope"))})
	if len(missing) != 1 || missing[0] != hashutil.Sum([]byte("nope")) {
		t.Errorf("missing = %v", missing)
	}
}

func TestByKindPaging(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	for i := 0; i < 5; i++ {
		attachOne(t, tg, key, fmt.Sprintf("d%d", i))
	}
	if n := tg.CountByKind(txn.KindData); n != 5 {
		t.Errorf("CountByKind = %d", n)
	}
	page1 := tg.ByKind(txn.KindData, 0)
	if len(page1) != 5 {
		t.Fatalf("page = %d", len(page1))
	}
	page2 := tg.ByKind(txn.KindData, 3)
	if len(page2) != 2 {
		t.Errorf("offset page = %d", len(page2))
	}
	if page2[0].ID() != page1[3].ID() {
		t.Error("offset paging inconsistent")
	}
	if got := tg.ByKind(txn.KindData, 10); got != nil {
		t.Error("past-the-end offset returned data")
	}
	if got := tg.ByKind(txn.KindData, -1); len(got) != 5 {
		t.Error("negative offset not floored")
	}
}

func TestLazyTipDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LazyParentAge = 10 * time.Second
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	tg, key := newTangle(t, cfg, vc)

	var events []Event
	tg.Observe(ObserverFunc(func(ev Event) { events = append(events, ev) }))

	// Once a parent has been approved (left the tip pool) and aged past
	// the threshold, re-approving it is lazy.
	old := attachOne(t, tg, key, "old")
	mover1 := buildTx(t, key, old.ID, old.ID, "mover-1") // retires `old`
	m1, err := tg.Attach(mover1)
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(30 * time.Second)
	mover2 := buildTx(t, key, m1.ID, m1.ID, "mover-2")
	if _, err := tg.Attach(mover2); err != nil {
		t.Fatal(err)
	}

	lazyBefore := countEvents(events, EventLazyTips)
	tx := buildTx(t, key, old.ID, old.ID, "lazy")
	if _, err := tg.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if got := countEvents(events, EventLazyTips); got != lazyBefore+1 {
		t.Errorf("lazy events = %d, want %d", got, lazyBefore+1)
	}
}

func TestLazyNotFlaggedForCurrentTips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LazyParentAge = 10 * time.Second
	vc := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	tg, key := newTangle(t, cfg, vc)
	var events []Event
	tg.Observe(ObserverFunc(func(ev Event) { events = append(events, ev) }))

	// Even after a long quiet period, approving *current tips* is
	// honest: the node contributes to the frontier.
	vc.Advance(time.Hour)
	attachOne(t, tg, key, "after-quiet")
	if got := countEvents(events, EventLazyTips); got != 0 {
		t.Errorf("lazy events = %d for tip-approving tx", got)
	}
}

func countEvents(events []Event, kind EventKind) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func TestApprovalEventsFeedWeights(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	var approvals []Event
	tg.Observe(ObserverFunc(func(ev Event) {
		if ev.Kind == EventApproved {
			approvals = append(approvals, ev)
		}
	}))
	first := attachOne(t, tg, key, "base")
	tx := buildTx(t, key, first.ID, first.ID, "approver")
	if _, err := tg.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if len(approvals) != 1 {
		t.Fatalf("approval events = %d, want 1", len(approvals))
	}
	if approvals[0].Tx != first.ID || approvals[0].Weight != 2 {
		t.Errorf("approval event = %+v", approvals[0])
	}
	if approvals[0].Node != key.Address() {
		t.Error("approval attributed to wrong node")
	}
}

func TestStats(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	for i := 0; i < 5; i++ {
		attachOne(t, tg, key, fmt.Sprintf("s%d", i))
	}
	s := tg.StatsNow()
	if s.Transactions != 7 {
		t.Errorf("transactions = %d", s.Transactions)
	}
	if s.Tips < 1 {
		t.Errorf("tips = %d", s.Tips)
	}
	if s.Confirmed < 2 { // genesis at least
		t.Errorf("confirmed = %d", s.Confirmed)
	}
}

func TestGetUnknown(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	if _, err := tg.Get(hashutil.Sum([]byte("missing"))); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("err = %v", err)
	}
	if _, err := tg.InfoOf(hashutil.Sum([]byte("missing"))); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("err = %v", err)
	}
	if _, err := tg.Weight(hashutil.Sum([]byte("missing"))); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("err = %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	info := attachOne(t, tg, key, "copy")
	got, err := tg.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	got.Payload[0] ^= 0xFF
	again, err := tg.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Payload[0] == got.Payload[0] {
		t.Error("Get exposed internal storage")
	}
}
