package tangle

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// TipStrategy selects the two parents a new transaction will approve.
type TipStrategy int

const (
	// StrategyUniform picks two tips uniformly at random (URTS) — the
	// paper's Fig-6 step 4: "get two random tips information from
	// gateways". Default.
	StrategyUniform TipStrategy = iota + 1
	// StrategyWeightedWalk runs two independent IOTA-style MCMC random
	// walks toward the tips, biased by cumulative weight. Walks start
	// from the confirmed-frontier anchor set (see anchor.go) and fall
	// back to genesis when no anchor is usable, so the per-walk cost is
	// bounded by the unconfirmed frontier, not the DAG depth. It
	// resists lazy-tip inflation: a walk rarely ends on an abandoned
	// branch.
	StrategyWeightedWalk
)

// String implements fmt.Stringer.
func (s TipStrategy) String() string {
	switch s {
	case StrategyUniform:
		return "uniform"
	case StrategyWeightedWalk:
		return "weighted-walk"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Valid reports whether s names an implemented strategy.
func (s TipStrategy) Valid() bool {
	return s == StrategyUniform || s == StrategyWeightedWalk
}

// ErrNoTips is returned when the tip pool is empty (cannot happen after
// genesis unless every tip was rejected, which conflict resolution
// prevents — but callers still handle it).
var ErrNoTips = errors.New("tangle has no tips")

// walkAlpha biases the MCMC walk: the probability of stepping to
// approver j is proportional to exp(alpha * cumWeight_j).
const walkAlpha = 0.05

// walker carries the per-call state of one tip selection: an RNG and
// the step scratch buffers. Pooling walkers keeps SelectTips free of
// tangle-wide mutable state — selection needs only the read lock and
// allocates nothing on the steady path.
type walker struct {
	rng     *rand.Rand
	cand    []*vertex
	weights []float64
}

// newWalker seeds a pooled walker. Streams are derived from the
// configured seed and a creation sequence number, so a fixed Config.Seed
// still yields reproducible single-goroutine runs (one walker is created
// and reused), while concurrent callers get independent streams.
func (t *Tangle) newWalker() *walker {
	n := t.walkerSeq.Add(1)
	stream := uint64(t.seed) + n*0x9E3779B97F4A7C15 // golden-ratio stride
	return &walker{rng: rand.New(rand.NewSource(int64(stream)))}
}

// SelectTips returns two parent IDs using the given strategy. The two
// may coincide when only one tip exists.
//
// SelectTips takes only the read lock: any number of selections run
// concurrently with each other (and with other read paths); only
// mutations serialize against it.
func (t *Tangle) SelectTips(strategy TipStrategy) (trunk, branch hashutil.Hash, err error) {
	return t.selectTips(strategy, true)
}

// SelectTipsGenesisWalk is SelectTips with anchored walk starts
// disabled: weighted walks begin at genesis, as in the original MCMC
// formulation. It is the baseline the benchmark suite and the anchored
// walk property tests compare against; production callers want
// SelectTips.
func (t *Tangle) SelectTipsGenesisWalk(strategy TipStrategy) (trunk, branch hashutil.Hash, err error) {
	return t.selectTips(strategy, false)
}

func (t *Tangle) selectTips(strategy TipStrategy, anchored bool) (trunk, branch hashutil.Hash, err error) {
	w := t.walkers.Get().(*walker)
	defer t.walkers.Put(w)

	t.mu.RLock()
	defer t.mu.RUnlock()

	if len(t.tipsSorted) == 0 {
		return hashutil.Zero, hashutil.Zero, ErrNoTips
	}
	switch strategy {
	case StrategyWeightedWalk:
		trunk = t.weightedWalkLocked(w, anchored)
		branch = t.weightedWalkLocked(w, anchored)
	case StrategyUniform:
		trunk = t.uniformTipLocked(w)
		branch = t.uniformTipLocked(w)
	default:
		return hashutil.Zero, hashutil.Zero, fmt.Errorf("unknown tip strategy %v", strategy)
	}
	return trunk, branch, nil
}

// uniformTipLocked samples the sorted tip cache, which is maintained
// incrementally on mutation — no per-call collection or sorting.
func (t *Tangle) uniformTipLocked(w *walker) hashutil.Hash {
	return t.tipsSorted[w.rng.Intn(len(t.tipsSorted))]
}

// weightedWalkLocked performs one MCMC walk toward the tips, stepping
// to approvers with probability ∝ exp(α·w). With anchored set, the walk
// starts from the confirmed-frontier anchor set; a walk that ends
// off-tip (its cone died in rejections) restarts from genesis, and a
// genesis walk that ends off-tip falls back to uniform selection.
func (t *Tangle) weightedWalkLocked(w *walker, anchored bool) hashutil.Hash {
	var start *vertex
	if anchored {
		start = t.anchorStartLocked(w)
	}
	if start == nil {
		t.met.GenesisWalks.Inc()
		start = t.vertices[t.genesis[w.rng.Intn(2)]]
	}
	if id, ok := t.walkFromLocked(w, start); ok {
		return id
	}
	if start.tx.Kind != txn.KindGenesis {
		// Correctness fallback: the anchored cone has no reachable tip;
		// retry from genesis before giving up on the walk entirely.
		t.met.WalkFallbacks.Inc()
		if id, ok := t.walkFromLocked(w, t.vertices[t.genesis[w.rng.Intn(2)]]); ok {
			return id
		}
	}
	// Walk ended on a vertex whose approvers are all rejected; fall
	// back to uniform selection.
	return t.uniformTipLocked(w)
}

// walkFromLocked walks from start to a sink and reports whether the
// sink is a tip.
func (t *Tangle) walkFromLocked(w *walker, start *vertex) (hashutil.Hash, bool) {
	cur := start
	steps := int64(0)
	for {
		next := t.stepLocked(w, cur)
		if next == nil {
			break
		}
		cur = next
		steps++
	}
	t.met.WalkLength.Set(steps)
	t.met.WalkLengthMax.StoreMax(steps)
	if _, isTip := t.tips[cur.id]; !isTip {
		return hashutil.Zero, false
	}
	return cur.id, true
}

func (t *Tangle) stepLocked(w *walker, cur *vertex) *vertex {
	candidates := w.cand[:0]
	for _, id := range cur.approvers {
		a := t.vertices[id]
		if a != nil && a.status != StatusRejected {
			candidates = append(candidates, a)
		}
	}
	w.cand = candidates[:0]
	if len(candidates) == 0 {
		return nil
	}
	// Softmax over cumulative weights, stabilized by the max.
	maxW := candidates[0].cumWeight
	for _, c := range candidates[1:] {
		if c.cumWeight > maxW {
			maxW = c.cumWeight
		}
	}
	weights := w.weights[:0]
	var total float64
	for _, c := range candidates {
		e := math.Exp(walkAlpha * float64(c.cumWeight-maxW))
		weights = append(weights, e)
		total += e
	}
	w.weights = weights[:0]
	r := w.rng.Float64() * total
	for i, wt := range weights {
		r -= wt
		if r <= 0 {
			return candidates[i]
		}
	}
	return candidates[len(candidates)-1]
}

// OldestApproved returns the ID of the oldest already-approved,
// non-genesis transaction — the favourite parent of a lazy attacker.
// Used by the attack injectors; returns false when every non-genesis
// vertex is still a tip.
//
// The candidates live in approvedOrder, appended in first-approval
// order (ledger clock stamps are non-decreasing), so the answer is at
// the queue head; the head index advances past entries pruned by
// snapshots, making the call amortized O(1) instead of a full scan.
func (t *Tangle) OldestApproved() (hashutil.Hash, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.approvedHead < len(t.approvedOrder) {
		if _, live := t.vertices[t.approvedOrder[t.approvedHead]]; live {
			break
		}
		t.approvedHead++
	}
	if t.approvedHead >= len(t.approvedOrder) {
		return hashutil.Zero, false
	}
	// Entries sharing the head's approval time are contiguous; break
	// the tie on the smaller ID, matching the original scan's order.
	best := t.vertices[t.approvedOrder[t.approvedHead]]
	for _, id := range t.approvedOrder[t.approvedHead+1:] {
		v, live := t.vertices[id]
		if !live {
			continue
		}
		if !v.firstApprovedAt.Equal(best.firstApprovedAt) {
			break
		}
		if v.id.Compare(best.id) < 0 {
			best = v
		}
	}
	return best.id, true
}
