package tangle

import (
	"errors"
	"fmt"
	"math"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/txn"
)

// TipStrategy selects the two parents a new transaction will approve.
type TipStrategy int

const (
	// StrategyUniform picks two tips uniformly at random (URTS) — the
	// paper's Fig-6 step 4: "get two random tips information from
	// gateways". Default.
	StrategyUniform TipStrategy = iota + 1
	// StrategyWeightedWalk runs two independent IOTA-style MCMC random
	// walks from genesis toward the tips, biased by cumulative weight.
	// It resists lazy-tip inflation: a walk rarely ends on an abandoned
	// branch.
	StrategyWeightedWalk
)

// String implements fmt.Stringer.
func (s TipStrategy) String() string {
	switch s {
	case StrategyUniform:
		return "uniform"
	case StrategyWeightedWalk:
		return "weighted-walk"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Valid reports whether s names an implemented strategy.
func (s TipStrategy) Valid() bool {
	return s == StrategyUniform || s == StrategyWeightedWalk
}

// ErrNoTips is returned when the tip pool is empty (cannot happen after
// genesis unless every tip was rejected, which conflict resolution
// prevents — but callers still handle it).
var ErrNoTips = errors.New("tangle has no tips")

// walkAlpha biases the MCMC walk: the probability of stepping to
// approver j is proportional to exp(alpha * cumWeight_j).
const walkAlpha = 0.05

// SelectTips returns two parent IDs using the given strategy. The two
// may coincide when only one tip exists.
func (t *Tangle) SelectTips(strategy TipStrategy) (trunk, branch hashutil.Hash, err error) {
	t.mu.Lock() // rng is not concurrency-safe: full lock
	defer t.mu.Unlock()

	if len(t.tips) == 0 {
		return hashutil.Zero, hashutil.Zero, ErrNoTips
	}
	switch strategy {
	case StrategyWeightedWalk:
		trunk = t.weightedWalkLocked()
		branch = t.weightedWalkLocked()
	case StrategyUniform:
		trunk = t.uniformTipLocked()
		branch = t.uniformTipLocked()
	default:
		return hashutil.Zero, hashutil.Zero, fmt.Errorf("unknown tip strategy %v", strategy)
	}
	return trunk, branch, nil
}

func (t *Tangle) uniformTipLocked() hashutil.Hash {
	// Deterministic iteration: collect and sort, then sample. The tip
	// pool is small (tips are consumed as fast as they are produced),
	// so the sort cost is negligible next to PoW.
	ids := make([]hashutil.Hash, 0, len(t.tips))
	for id := range t.tips {
		ids = append(ids, id)
	}
	sortHashes(ids)
	return ids[t.rng.Intn(len(ids))]
}

// weightedWalkLocked performs one MCMC walk from a genesis vertex toward
// the tips, stepping to approvers with probability ∝ exp(α·w).
func (t *Tangle) weightedWalkLocked() hashutil.Hash {
	cur := t.vertices[t.genesis[t.rng.Intn(2)]]
	for {
		next := t.stepLocked(cur)
		if next == nil {
			break
		}
		cur = next
	}
	if _, isTip := t.tips[cur.id]; !isTip {
		// Walk ended on a vertex whose approvers are all rejected;
		// fall back to uniform selection.
		return t.uniformTipLocked()
	}
	return cur.id
}

func (t *Tangle) stepLocked(cur *vertex) *vertex {
	candidates := make([]*vertex, 0, len(cur.approvers))
	for _, id := range cur.approvers {
		a := t.vertices[id]
		if a != nil && a.status != StatusRejected {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	// Softmax over cumulative weights, stabilized by the max.
	maxW := candidates[0].cumWeight
	for _, c := range candidates[1:] {
		if c.cumWeight > maxW {
			maxW = c.cumWeight
		}
	}
	weights := make([]float64, len(candidates))
	var total float64
	for i, c := range candidates {
		weights[i] = math.Exp(walkAlpha * float64(c.cumWeight-maxW))
		total += weights[i]
	}
	r := t.rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return candidates[i]
		}
	}
	return candidates[len(candidates)-1]
}

// OldestApproved returns the ID of the oldest already-approved,
// non-genesis transaction — the favourite parent of a lazy attacker.
// Used by the attack injectors; returns false when every non-genesis
// vertex is still a tip.
func (t *Tangle) OldestApproved() (hashutil.Hash, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best *vertex
	for _, v := range t.vertices {
		if v.firstApprovedAt.IsZero() || v.tx.Kind == txn.KindGenesis {
			continue
		}
		if best == nil ||
			v.firstApprovedAt.Before(best.firstApprovedAt) ||
			(v.firstApprovedAt.Equal(best.firstApprovedAt) && v.id.Compare(best.id) < 0) {
			best = v
		}
	}
	if best == nil {
		return hashutil.Zero, false
	}
	return best.id, true
}

func sortHashes(ids []hashutil.Hash) {
	// Insertion sort: tip pools are small and usually nearly sorted.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Compare(ids[j-1]) < 0; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
