package tangle

import (
	"fmt"
	"testing"

	"github.com/b-iot/biot/internal/hashutil"
)

func TestSelectTipsUniformReturnsTips(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	for i := 0; i < 20; i++ {
		attachOne(t, tg, key, fmt.Sprintf("tx-%d", i))
	}
	tipSet := make(map[hashutil.Hash]bool)
	for _, id := range tg.Tips() {
		tipSet[id] = true
	}
	for i := 0; i < 30; i++ {
		trunk, branch, err := tg.SelectTips(StrategyUniform)
		if err != nil {
			t.Fatal(err)
		}
		if !tipSet[trunk] || !tipSet[branch] {
			t.Fatal("uniform selection returned a non-tip")
		}
	}
}

func TestSelectTipsWeightedWalkReturnsTips(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	for i := 0; i < 30; i++ {
		attachOne(t, tg, key, fmt.Sprintf("tx-%d", i))
	}
	tipSet := make(map[hashutil.Hash]bool)
	for _, id := range tg.Tips() {
		tipSet[id] = true
	}
	for i := 0; i < 30; i++ {
		trunk, branch, err := tg.SelectTips(StrategyWeightedWalk)
		if err != nil {
			t.Fatal(err)
		}
		if !tipSet[trunk] || !tipSet[branch] {
			t.Fatal("weighted walk returned a non-tip")
		}
	}
}

func TestSelectTipsUnknownStrategy(t *testing.T) {
	tg, _ := newTangle(t, DefaultConfig(), nil)
	if _, _, err := tg.SelectTips(TipStrategy(42)); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestSelectTipsDeterministicWithSeed(t *testing.T) {
	build := func() []hashutil.Hash {
		cfg := DefaultConfig()
		cfg.Seed = 12345
		key := mustKey(t)
		tg, err := New(cfg, key.Public(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic structure: attach via explicit parents.
		g := tg.Genesis()
		last := g[0]
		for i := 0; i < 10; i++ {
			tx := buildTx(t, key, last, g[1], fmt.Sprintf("d-%d", i))
			info, err := tg.Attach(tx)
			if err != nil {
				t.Fatal(err)
			}
			last = info.ID
		}
		var picks []hashutil.Hash
		for i := 0; i < 5; i++ {
			trunk, branch, err := tg.SelectTips(StrategyUniform)
			if err != nil {
				t.Fatal(err)
			}
			picks = append(picks, trunk, branch)
		}
		return picks
	}
	// Same seed and same structure, but different signing keys produce
	// different tx IDs; determinism is only meaningful within one
	// instance. Here we assert the selection sequence is stable for one
	// tangle queried twice with the same state snapshot size.
	p := build()
	if len(p) != 10 {
		t.Fatalf("picks = %d", len(p))
	}
}

// The weighted walk should strongly prefer the heavy branch: build a
// fork where one side has 20 supporting transactions and the other has
// one stale tip.
func TestWeightedWalkPrefersHeavyBranch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConfirmationWeight = 1000 // keep weights flowing (no freezing)
	tg, key := newTangle(t, cfg, nil)
	g := tg.Genesis()

	// Light branch: one orphan-ish tip off genesis.
	lightTx := buildTx(t, key, g[0], g[1], "light")
	light, err := tg.Attach(lightTx)
	if err != nil {
		t.Fatal(err)
	}

	// Heavy branch: a long chain off genesis.
	heavyTx := buildTx(t, key, g[0], g[1], "heavy-root")
	heavy, err := tg.Attach(heavyTx)
	if err != nil {
		t.Fatal(err)
	}
	last := heavy.ID
	for i := 0; i < 20; i++ {
		tx := buildTx(t, key, last, last, fmt.Sprintf("heavy-%d", i))
		info, err := tg.Attach(tx)
		if err != nil {
			t.Fatal(err)
		}
		last = info.ID
	}

	heavyPicks, lightPicks := 0, 0
	for i := 0; i < 200; i++ {
		trunk, _, err := tg.SelectTips(StrategyWeightedWalk)
		if err != nil {
			t.Fatal(err)
		}
		switch trunk {
		case last:
			heavyPicks++
		case light.ID:
			lightPicks++
		}
	}
	if heavyPicks <= lightPicks {
		t.Errorf("weighted walk picked heavy %d vs light %d", heavyPicks, lightPicks)
	}
}

func TestOldestApproved(t *testing.T) {
	tg, key := newTangle(t, DefaultConfig(), nil)
	if _, ok := tg.OldestApproved(); ok {
		t.Error("fresh tangle reported an oldest approved tx")
	}
	first := attachOne(t, tg, key, "first")
	// Approve it so it leaves the tip pool.
	tx := buildTx(t, key, first.ID, first.ID, "approver")
	if _, err := tg.Attach(tx); err != nil {
		t.Fatal(err)
	}
	id, ok := tg.OldestApproved()
	if !ok || id != first.ID {
		t.Errorf("OldestApproved = (%v, %v), want (%v, true)", id, ok, first.ID)
	}
}

func TestTipStrategyStringValid(t *testing.T) {
	if !StrategyUniform.Valid() || !StrategyWeightedWalk.Valid() {
		t.Error("strategies invalid")
	}
	if TipStrategy(0).Valid() {
		t.Error("zero strategy valid")
	}
	if StrategyUniform.String() != "uniform" || StrategyWeightedWalk.String() != "weighted-walk" {
		t.Error("strategy strings wrong")
	}
}
