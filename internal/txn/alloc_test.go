package txn

import (
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Allocation budgets for the wire hot path. These are regression
// guards, not aspirations: the benchmark-regression smoke in `make
// test` fails if the admission path drifts above them.
//
//   - decodeVerifyIDBudget covers the full inbound cost of one relayed
//     transaction: Decode (transaction struct + one owned buffer + one
//     cache snapshot), ID (one cache snapshot carrying the digest),
//     signature verify and PoW check (zero — they run over the cached
//     encoding).
//   - Steady-state re-encode, re-ID, signing-bytes and PoW digest are
//     pinned at zero: that is the "stop re-serializing" contract.
const decodeVerifyIDBudget = 4

func wireTx(tb testing.TB) (*Transaction, []byte) {
	tb.Helper()
	key, err := identity.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	tx := &Transaction{
		Trunk:     hashutil.Sum([]byte("alloc-trunk")),
		Branch:    hashutil.Sum([]byte("alloc-branch")),
		Timestamp: time.Unix(1_700_000_000, 0).UTC(),
		Kind:      KindData,
		Payload:   make([]byte, 256),
	}
	tx.Sign(key)
	return tx, tx.Encode()
}

// TestWirePathAllocationBudget pins the allocation count of the full
// inbound admission sequence — decode, identify, verify signature,
// verify PoW — at decodeVerifyIDBudget per transaction.
func TestWirePathAllocationBudget(t *testing.T) {
	_, raw := wireTx(t)
	got := testing.AllocsPerRun(200, func() {
		d, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		_ = d.ID()
		if err := d.VerifyBasic(); err != nil {
			t.Fatal(err)
		}
		_ = d.VerifyPoW(0)
	})
	if got > decodeVerifyIDBudget {
		t.Fatalf("decode+ID+verify+PoW allocates %.1f/op, budget %d", got, decodeVerifyIDBudget)
	}
}

// TestSteadyStateZeroAlloc pins the cached re-read paths at zero
// allocations: once a transaction has been encoded or decoded, no
// amount of re-encoding, re-identifying or re-verifying serializes it
// again.
func TestSteadyStateZeroAlloc(t *testing.T) {
	tx, _ := wireTx(t)
	tx.ID() // warm the cache and its digest
	checks := []struct {
		name string
		fn   func()
	}{
		{"ID", func() { _ = tx.ID() }},
		{"Encode", func() { _ = tx.Encode() }},
		{"SigningBytes", func() { _ = tx.SigningBytes() }},
		{"PowDigest", func() { _ = tx.PowDigest() }},
		{"AppendEncode", func() {
			var buf [512]byte
			_ = tx.AppendEncode(buf[:0])
		}},
	}
	for _, c := range checks {
		if got := testing.AllocsPerRun(200, c.fn); got != 0 {
			t.Errorf("%s allocates %.1f/op after caching, want 0", c.name, got)
		}
	}
}

// TestNonceChangeRefreshesCache pins the one legal post-encode
// mutation: PoW stores the winning nonce after signing, and the cache
// must follow it (stale IDs here would fork the ledger).
func TestNonceChangeRefreshesCache(t *testing.T) {
	tx, _ := wireTx(t)
	id1 := tx.ID()
	enc1 := append([]byte(nil), tx.Encode()...)
	tx.Nonce = 0xFEEDFACE
	if tx.ID() == id1 {
		t.Fatal("ID unchanged after nonce mutation")
	}
	enc2 := tx.Encode()
	if len(enc1) != len(enc2) {
		t.Fatal("encoding length changed with nonce")
	}
	decoded, err := Decode(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Nonce != 0xFEEDFACE {
		t.Fatalf("re-encoded nonce = %#x", decoded.Nonce)
	}
	if err := decoded.VerifyBasic(); err != nil {
		t.Fatalf("nonce change broke the cached signature view: %v", err)
	}
}

// TestInvalidateAllowsFieldMutation pins the escape hatch for tests and
// attack harnesses that mutate fields directly after an encode.
func TestInvalidateAllowsFieldMutation(t *testing.T) {
	tx, _ := wireTx(t)
	if err := tx.VerifyBasic(); err != nil {
		t.Fatal(err)
	}
	tx.Payload = append(tx.Payload, 0xFF)
	tx.Invalidate()
	if err := tx.VerifyBasic(); err == nil {
		t.Fatal("tampered payload verified after Invalidate")
	}
}

func BenchmarkDecodeVerifyID(b *testing.B) {
	_, raw := wireTx(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := Decode(raw)
		if err != nil {
			b.Fatal(err)
		}
		_ = d.ID()
		if err := d.VerifyBasic(); err != nil {
			b.Fatal(err)
		}
	}
}
