package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Wire format (all integers big-endian):
//
//	magic     uint16  = 0xB107
//	version   uint8   = 1
//	kind      uint8
//	trunk     [32]byte
//	branch    [32]byte
//	timestamp int64   (unix nanoseconds)
//	issuer    uint16-length-prefixed bytes
//	payload   uint32-length-prefixed bytes
//	--- fields below present only in the full encoding ---
//	nonce     uint64
//	signature uint16-length-prefixed bytes
//
// SigningBytes is the prefix of Encode ending right before nonce, so a
// signature over SigningBytes commits to every field the issuer chose.

const (
	wireMagic   uint16 = 0xB107
	wireVersion uint8  = 1
)

// Decoding errors.
var (
	ErrBadMagic       = errors.New("transaction encoding has wrong magic")
	ErrBadVersion     = errors.New("transaction encoding has unsupported version")
	ErrTruncated      = errors.New("transaction encoding truncated")
	ErrTrailingBytes  = errors.New("transaction encoding has trailing bytes")
	ErrFieldTooLarge  = errors.New("transaction field exceeds encoding limit")
	errInternalEncode = errors.New("internal encoding inconsistency")
)

// wireCache is one immutable snapshot of a transaction's canonical
// encoding, shared through Transaction.cache (an atomic pointer) so
// concurrent readers never re-serialize and never race. The nonce bytes
// at enc[signingLen:signingLen+8] are the only field the protocol
// legitimately mutates after the first encode (PoW runs after signing,
// Fig 6); ensureCache detects a changed Nonce and rebuilds.
type wireCache struct {
	enc        []byte        // full canonical encoding
	signingLen int           // length of the SigningBytes prefix within enc
	id         hashutil.Hash // SHA-256 of enc, once computed
	idValid    bool
}

// ensureCache returns a cache snapshot whose encoding matches the
// transaction's current fields, building one on first use. Fields
// other than Nonce must not be mutated after the first
// Encode/ID/SigningBytes/VerifyBasic call — Sign and Invalidate reset
// the cache; direct mutation of any other field afterwards is a
// contract violation (Clone first, or call Invalidate).
func (t *Transaction) ensureCache() *wireCache {
	if c := t.cache.Load(); c != nil &&
		binary.BigEndian.Uint64(c.enc[c.signingLen:]) == t.Nonce {
		return c
	}
	c := &wireCache{enc: t.appendEncode(nil, true)}
	c.signingLen = len(c.enc) - 8 - 2 - len(t.Signature)
	t.cache.Store(c)
	return c
}

// Encode returns the full canonical encoding, including nonce and
// signature. ID() is the SHA-256 of this byte string.
//
// The returned slice is the transaction's cached encoding: treat it as
// read-only and use AppendEncode for a private copy.
func (t *Transaction) Encode() []byte {
	return t.ensureCache().enc
}

// AppendEncode appends the full canonical encoding to dst and returns
// the extended slice, reusing the cached encoding when present. It is
// the allocation-free path for callers assembling wire messages or
// journal records into their own buffers.
func (t *Transaction) AppendEncode(dst []byte) []byte {
	return append(dst, t.ensureCache().enc...)
}

// Invalidate drops the cached canonical encoding. Callers that mutate
// transaction fields directly (tests, attack harnesses) after an
// encode-path call must invalidate before re-encoding or re-verifying;
// the protocol itself never needs it (Sign invalidates, and Nonce
// changes are tracked).
func (t *Transaction) Invalidate() {
	t.cache.Store(nil)
}

// appendEncode serializes from the struct fields, bypassing the cache.
func (t *Transaction) appendEncode(buf []byte, full bool) []byte {
	size := 2 + 1 + 1 + hashutil.Size*2 + 8 + 2 + len(t.Issuer) + 4 + len(t.Payload)
	if full {
		size += 8 + 2 + len(t.Signature)
	}
	if buf == nil {
		buf = make([]byte, 0, size)
	}
	buf = binary.BigEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, wireVersion, byte(t.Kind))
	buf = append(buf, t.Trunk[:]...)
	buf = append(buf, t.Branch[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Timestamp.UnixNano()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Issuer)))
	buf = append(buf, t.Issuer...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Payload)))
	buf = append(buf, t.Payload...)
	if full {
		buf = binary.BigEndian.AppendUint64(buf, t.Nonce)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Signature)))
		buf = append(buf, t.Signature...)
	}
	return buf
}

type decoder struct {
	data []byte
	off  int
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) take(n int) ([]byte, error) {
	if d.remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, n, d.off, d.remaining())
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *decoder) uint16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (d *decoder) uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (d *decoder) uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Decode parses a full canonical encoding produced by Encode.
//
// The wire format is positional, so the input IS the canonical
// encoding: Decode copies it once, seeds the transaction's encoding
// cache with that copy, and sub-slices Issuer, Payload and Signature
// from it — one buffer allocation for the whole transaction, and
// ID/Encode/SigningBytes/VerifyBasic never re-serialize. The decoded
// transaction's byte-slice fields alias the cache; Clone before
// mutating them.
func Decode(data []byte) (*Transaction, error) {
	owned := append([]byte(nil), data...)
	d := &decoder{data: owned}
	magic, err := d.uint16()
	if err != nil {
		return nil, err
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("%w: 0x%04x", ErrBadMagic, magic)
	}
	header, err := d.take(2)
	if err != nil {
		return nil, err
	}
	if header[0] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, header[0])
	}
	t := &Transaction{Kind: Kind(header[1])}
	trunk, err := d.take(hashutil.Size)
	if err != nil {
		return nil, err
	}
	copy(t.Trunk[:], trunk)
	branch, err := d.take(hashutil.Size)
	if err != nil {
		return nil, err
	}
	copy(t.Branch[:], branch)
	tsNanos, err := d.uint64()
	if err != nil {
		return nil, err
	}
	t.Timestamp = time.Unix(0, int64(tsNanos)).UTC()
	issuerLen, err := d.uint16()
	if err != nil {
		return nil, err
	}
	issuer, err := d.take(int(issuerLen))
	if err != nil {
		return nil, err
	}
	t.Issuer = identity.PublicKey(issuer)
	payloadLen, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if payloadLen > MaxPayloadSize {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrFieldTooLarge, payloadLen)
	}
	payload, err := d.take(int(payloadLen))
	if err != nil {
		return nil, err
	}
	t.Payload = payload
	signingLen := d.off
	if t.Nonce, err = d.uint64(); err != nil {
		return nil, err
	}
	sigLen, err := d.uint16()
	if err != nil {
		return nil, err
	}
	sig, err := d.take(int(sigLen))
	if err != nil {
		return nil, err
	}
	t.Signature = sig
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, d.remaining())
	}
	// The input was parsed positionally start to finish, so owned is
	// bit-identical to what re-encoding the fields would produce: seed
	// the cache and the wire path never serializes this transaction
	// again.
	t.cache.Store(&wireCache{enc: owned, signingLen: signingLen})
	return t, nil
}
