package txn

import (
	"bytes"
	"testing"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// FuzzDecode checks that the canonical decoder never panics and that
// any input it accepts re-encodes to the identical byte string (the
// codec is bijective on its accepted set — the property that makes
// ID() well-defined across the wire).
func FuzzDecode(f *testing.F) {
	key, err := identity.Generate()
	if err != nil {
		f.Fatal(err)
	}
	seed := &Transaction{
		Trunk:     hashutil.Sum([]byte("t")),
		Branch:    hashutil.Sum([]byte("b")),
		Timestamp: time.Unix(1_700_000_000, 42),
		Kind:      KindData,
		Payload:   []byte("sensor=temperature;value=20"),
		Nonce:     12345,
	}
	seed.Sign(key)
	enc := seed.Encode()
	f.Add(enc)
	f.Add([]byte{})
	f.Add([]byte{0xB1, 0x07})
	f.Add(bytes.Repeat([]byte{0xFF}, 200))
	// Shapes a batched gossip datagram can hand the decoder: an entry
	// truncated mid-field and one with a whole second encoding appended
	// (a framing bug duplicating a payload must not decode as valid).
	f.Add(enc[:len(enc)/2])
	f.Add(enc[:len(enc)-1])
	f.Add(append(append([]byte(nil), enc...), enc...))
	f.Add(append(append([]byte(nil), enc...), 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(decoded.Encode(), data) {
			t.Fatalf("accepted input does not round-trip")
		}
		// ID must be stable under clone.
		if decoded.Clone().ID() != decoded.ID() {
			t.Fatal("clone changed the ID")
		}
	})
}

// FuzzDecodeTransfer checks the transfer-body parser.
func FuzzDecodeTransfer(f *testing.F) {
	f.Add(EncodeTransfer(Transfer{Amount: 1, Seq: 2}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTransfer(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeTransfer(tr), data) {
			t.Fatal("transfer round trip mismatch")
		}
	})
}
