package txn

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Transfer is the body of a KindTransfer transaction: it moves Amount
// tokens from the issuer to To, and consumes the issuer's spend sequence
// number Seq.
//
// Double-spending (paper §III): "a malicious node wants to spend the same
// token twice or more through submitting multiple transactions before the
// previous one is verified". Two transfers from the same account with the
// same Seq are conflicting; the tangle keeps the branch with greater
// cumulative weight and rejects the other, and the conflict is reported
// to the credit ledger as a malicious event.
type Transfer struct {
	To     identity.Address
	Amount uint64
	Seq    uint64
}

const transferWireSize = hashutil.Size + 8 + 8

// Transfer payload errors.
var (
	ErrBadTransferBody = errors.New("malformed transfer payload")
	ErrZeroAmount      = errors.New("transfer amount must be positive")
)

// EncodeTransfer serializes a transfer body.
func EncodeTransfer(tr Transfer) []byte {
	buf := make([]byte, 0, transferWireSize)
	buf = append(buf, tr.To[:]...)
	buf = binary.BigEndian.AppendUint64(buf, tr.Amount)
	buf = binary.BigEndian.AppendUint64(buf, tr.Seq)
	return buf
}

// DecodeTransfer parses a transfer body.
func DecodeTransfer(data []byte) (Transfer, error) {
	if len(data) != transferWireSize {
		return Transfer{}, fmt.Errorf("%w: %d bytes, want %d",
			ErrBadTransferBody, len(data), transferWireSize)
	}
	var tr Transfer
	copy(tr.To[:], data[:hashutil.Size])
	tr.Amount = binary.BigEndian.Uint64(data[hashutil.Size:])
	tr.Seq = binary.BigEndian.Uint64(data[hashutil.Size+8:])
	return tr, nil
}

// TransferOf extracts and validates the transfer body of t. It returns
// ErrBadTransferBody-wrapped errors for non-transfer or malformed
// transactions.
func TransferOf(t *Transaction) (Transfer, error) {
	if t.Kind != KindTransfer {
		return Transfer{}, fmt.Errorf("%w: kind %v", ErrBadTransferBody, t.Kind)
	}
	tr, err := DecodeTransfer(t.Payload)
	if err != nil {
		return Transfer{}, err
	}
	if tr.Amount == 0 {
		return Transfer{}, ErrZeroAmount
	}
	return tr, nil
}

// SpendKey identifies the ledger resource a transfer consumes: the
// (account, sequence) pair. Two distinct transactions with the same
// SpendKey are a double spend.
type SpendKey struct {
	Account identity.Address
	Seq     uint64
}

// SpendKeyOf returns the spend key consumed by a transfer transaction.
func SpendKeyOf(t *Transaction, tr Transfer) SpendKey {
	return SpendKey{Account: t.Sender(), Seq: tr.Seq}
}
