package txn

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

func TestTransferRoundTrip(t *testing.T) {
	check := func(to hashutil.Hash, amount, seq uint64) bool {
		tr := Transfer{To: to, Amount: amount, Seq: seq}
		got, err := DecodeTransfer(EncodeTransfer(tr))
		return err == nil && got == tr
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTransferErrors(t *testing.T) {
	for _, n := range []int{0, 1, 47, 49, 100} {
		if _, err := DecodeTransfer(make([]byte, n)); err == nil {
			t.Errorf("decoded transfer of %d bytes", n)
		}
	}
}

func transferTx(t *testing.T, key *identity.KeyPair, tr Transfer) *Transaction {
	t.Helper()
	tx := &Transaction{
		Trunk:     hashutil.Sum([]byte("t")),
		Branch:    hashutil.Sum([]byte("b")),
		Timestamp: time.Unix(1, 0),
		Kind:      KindTransfer,
		Payload:   EncodeTransfer(tr),
	}
	tx.Sign(key)
	return tx
}

func TestTransferOf(t *testing.T) {
	key := mustKey(t)
	to := identity.AddressOf(key.Public())
	tx := transferTx(t, key, Transfer{To: to, Amount: 5, Seq: 3})
	got, err := TransferOf(tx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Amount != 5 || got.Seq != 3 || got.To != to {
		t.Errorf("TransferOf = %+v", got)
	}
}

func TestTransferOfRejectsWrongKind(t *testing.T) {
	key := mustKey(t)
	tx := transferTx(t, key, Transfer{Amount: 5})
	tx.Kind = KindData
	if _, err := TransferOf(tx); err == nil {
		t.Error("non-transfer accepted")
	}
}

func TestTransferOfRejectsZeroAmount(t *testing.T) {
	key := mustKey(t)
	tx := transferTx(t, key, Transfer{Amount: 0, Seq: 1})
	if _, err := TransferOf(tx); err == nil {
		t.Error("zero-amount transfer accepted")
	}
}

func TestTransferOfRejectsMalformedBody(t *testing.T) {
	key := mustKey(t)
	tx := transferTx(t, key, Transfer{Amount: 1})
	tx.Payload = tx.Payload[:10]
	if _, err := TransferOf(tx); err == nil {
		t.Error("malformed body accepted")
	}
}

func TestSpendKeyOf(t *testing.T) {
	key := mustKey(t)
	tr := Transfer{Amount: 1, Seq: 9}
	tx := transferTx(t, key, tr)
	sk := SpendKeyOf(tx, tr)
	if sk.Account != key.Address() || sk.Seq != 9 {
		t.Errorf("SpendKeyOf = %+v", sk)
	}
	// Two txs with the same (account, seq) share the spend key — the
	// double-spend resource.
	tx2 := transferTx(t, key, Transfer{To: hashutil.Sum([]byte("v")), Amount: 2, Seq: 9})
	tr2, err := TransferOf(tx2)
	if err != nil {
		t.Fatal(err)
	}
	if SpendKeyOf(tx2, tr2) != sk {
		t.Error("same (account, seq) produced different spend keys")
	}
}
