// Package txn defines the B-IoT transaction model.
//
// In a DAG-structured blockchain there are no blocks: "each transaction
// is an individual node linked in the distributed ledger" (paper §II-B).
// Every non-genesis transaction approves two former transactions (its
// trunk and branch parents, the "tips" it validated) and carries a
// proof-of-work nonce per Eqn 6:
//
//	output = hash{hash(TX1) || hash(TX2) || nonce}
//
// Transactions are signed by the issuing account and carry a typed
// payload: sensor data (optionally encrypted), a token transfer, a
// manager authorization list, or a key-distribution protocol message.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Kind enumerates payload types carried by transactions.
type Kind int

const (
	// KindData is a sensor-data report (possibly AES-encrypted).
	KindData Kind = iota + 1
	// KindTransfer moves tokens between accounts; it is the payload on
	// which double-spending has concrete semantics.
	KindTransfer
	// KindAuthorization is a manager-signed device authorization list
	// update (paper Eqn 1).
	KindAuthorization
	// KindKeyDist carries one message of the Fig-4 symmetric-key
	// distribution protocol.
	KindKeyDist
	// KindGenesis marks the two genesis transactions that bootstrap the
	// tangle.
	KindGenesis
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindTransfer:
		return "transfer"
	case KindAuthorization:
		return "authorization"
	case KindKeyDist:
		return "keydist"
	case KindGenesis:
		return "genesis"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Valid reports whether k is a known payload kind.
func (k Kind) Valid() bool { return k >= KindData && k <= KindGenesis }

// MaxPayloadSize bounds payload bytes accepted by validation. The paper
// (§VI-B) observes "a 256 kilobytes data package is large enough for IoT
// transmission"; we allow 1 MiB so the Fig-10 sweep's largest message
// still fits in a single transaction.
const MaxPayloadSize = 1 << 20

// Transaction is one vertex of the tangle DAG.
type Transaction struct {
	// Trunk and Branch are the two approved parent transactions
	// ("tips" at issue time). Genesis transactions reference Zero.
	Trunk  hashutil.Hash
	Branch hashutil.Hash

	// Issuer is the Ed25519 public key of the issuing account.
	Issuer identity.PublicKey
	// Timestamp is the issue instant claimed by the issuer.
	Timestamp time.Time

	// Kind tags the payload; Payload is the kind-specific body.
	Kind    Kind
	Payload []byte

	// Nonce is the proof-of-work solution over (Trunk, Branch, Nonce).
	Nonce uint64
	// Signature is the issuer's Ed25519 signature over SigningBytes.
	Signature []byte

	// cache holds the canonical encoding (and its SHA-256) so the wire
	// path — decode, verify, ID, re-encode — serializes each
	// transaction at most once. See wireCache in encode.go for the
	// mutation contract. An atomic pointer rather than a mutex: cache
	// fills are idempotent, and concurrent readers (gossip fan-out,
	// sync pages, verification pool) must never block each other.
	cache atomic.Pointer[wireCache]
}

// ID returns the transaction identity: the SHA-256 digest of the full
// canonical encoding (parents, issuer, timestamp, payload, nonce,
// signature). Any mutation changes the ID. The digest is computed once
// per encoding and cached.
func (t *Transaction) ID() hashutil.Hash {
	c := t.ensureCache()
	if c.idValid {
		return c.id
	}
	// Publish a fresh snapshot rather than writing into the shared one:
	// a concurrent reader may hold c.
	withID := &wireCache{enc: c.enc, signingLen: c.signingLen, id: hashutil.Sum(c.enc), idValid: true}
	t.cache.Store(withID)
	return withID.id
}

// Sender returns the issuing account's address.
func (t *Transaction) Sender() identity.Address {
	return identity.AddressOf(t.Issuer)
}

// PowDigest computes the Eqn-6 output for the transaction's parents and
// the given nonce. Single-pass over a fixed stack buffer: no heap
// allocation per attempt, which matters both in mining loops and on the
// relay admission path that re-checks every gossiped transaction.
func PowDigest(trunk, branch hashutil.Hash, nonce uint64) hashutil.Hash {
	return hashutil.SumPow(trunk, branch, nonce)
}

// PowDigest returns the Eqn-6 output for this transaction's own nonce.
func (t *Transaction) PowDigest() hashutil.Hash {
	return PowDigest(t.Trunk, t.Branch, t.Nonce)
}

// SigningBytes returns the canonical byte string covered by the issuer's
// signature: everything except the nonce and the signature itself. The
// nonce is excluded because proof-of-work is computed after signing
// (paper Fig 6 steps 4-5: validate tips, then bundle via PoW).
//
// It is the prefix of the full canonical encoding, so a cached
// transaction pays nothing here. The returned slice aliases the cache;
// treat it as read-only.
func (t *Transaction) SigningBytes() []byte {
	c := t.ensureCache()
	return c.enc[:c.signingLen]
}

// Sign signs the transaction with key and stores the signature. The
// issuer field is set from the key; callers sign before running PoW.
// Sign resets the encoding cache: it changes Issuer and Signature, and
// the signing prefix must be serialized from the updated fields.
func (t *Transaction) Sign(key *identity.KeyPair) {
	t.cache.Store(nil)
	t.Issuer = key.Public()
	t.Signature = key.Sign(t.appendEncode(nil, false))
}

// Validation errors. They are matched by gateways to decide whether a
// submission is merely malformed or evidence of misbehaviour.
var (
	ErrNoIssuer         = errors.New("transaction has no issuer public key")
	ErrBadKind          = errors.New("transaction has unknown payload kind")
	ErrPayloadTooLarge  = errors.New("transaction payload exceeds maximum size")
	ErrMissingParents   = errors.New("non-genesis transaction must approve two parents")
	ErrSelfParent       = errors.New("transaction approves itself")
	ErrBadTxSignature   = errors.New("transaction signature invalid")
	ErrInsufficientWork = errors.New("proof of work does not meet required difficulty")
	ErrGenesisParents   = errors.New("genesis transaction must reference zero parents")
)

// VerifyStructure checks everything VerifyBasic does except the
// signature: issuer presence, payload kind and size, and parent shape.
// The batch-verification path runs it per transaction and then settles
// all the signatures with one identity.VerifyBatch call.
func (t *Transaction) VerifyStructure() error {
	if len(t.Issuer) == 0 {
		return ErrNoIssuer
	}
	if !t.Kind.Valid() {
		return ErrBadKind
	}
	if len(t.Payload) > MaxPayloadSize {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(t.Payload))
	}
	if t.Kind == KindGenesis {
		if !t.Trunk.IsZero() || !t.Branch.IsZero() {
			return ErrGenesisParents
		}
	} else {
		if t.Trunk.IsZero() || t.Branch.IsZero() {
			return ErrMissingParents
		}
	}
	return nil
}

// VerifyBasic checks structural integrity and the issuer signature. It
// does not check proof-of-work (difficulty is per-node under the
// credit-based mechanism; see VerifyPoW) nor ledger semantics.
//
// The signature is checked against the cached canonical encoding's
// signing prefix — one serialization per transaction no matter how
// often it is verified, identified or re-encoded.
func (t *Transaction) VerifyBasic() error {
	if err := t.VerifyStructure(); err != nil {
		return err
	}
	if err := identity.Verify(t.Issuer, t.SigningBytes(), t.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTxSignature, err)
	}
	return nil
}

// VerifyPoW checks that the transaction's nonce satisfies the given
// difficulty (leading zero bits of the Eqn-6 output).
func (t *Transaction) VerifyPoW(difficulty int) error {
	if !t.PowDigest().MeetsDifficulty(difficulty) {
		return fmt.Errorf("%w: have %d bits, need %d",
			ErrInsufficientWork, t.PowDigest().LeadingZeroBits(), difficulty)
	}
	return nil
}

// Clone returns a deep copy of the transaction: every byte-slice field
// is freshly allocated, so mutating either side never corrupts the
// other. When the original carries a current encoding cache the clone
// shares that snapshot — wireCache values are immutable (a nonce change
// replaces the snapshot, never patches it), so sharing is safe and the
// clone inherits the already-computed encoding and ID for free.
func (t *Transaction) Clone() *Transaction {
	cp := &Transaction{
		Trunk:     t.Trunk,
		Branch:    t.Branch,
		Issuer:    append(identity.PublicKey(nil), t.Issuer...),
		Timestamp: t.Timestamp,
		Kind:      t.Kind,
		Payload:   append([]byte(nil), t.Payload...),
		Nonce:     t.Nonce,
		Signature: append([]byte(nil), t.Signature...),
	}
	if c := t.cache.Load(); c != nil && binary.BigEndian.Uint64(c.enc[c.signingLen:]) == t.Nonce {
		cp.cache.Store(c)
	}
	return cp
}
