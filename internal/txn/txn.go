// Package txn defines the B-IoT transaction model.
//
// In a DAG-structured blockchain there are no blocks: "each transaction
// is an individual node linked in the distributed ledger" (paper §II-B).
// Every non-genesis transaction approves two former transactions (its
// trunk and branch parents, the "tips" it validated) and carries a
// proof-of-work nonce per Eqn 6:
//
//	output = hash{hash(TX1) || hash(TX2) || nonce}
//
// Transactions are signed by the issuing account and carry a typed
// payload: sensor data (optionally encrypted), a token transfer, a
// manager authorization list, or a key-distribution protocol message.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

// Kind enumerates payload types carried by transactions.
type Kind int

const (
	// KindData is a sensor-data report (possibly AES-encrypted).
	KindData Kind = iota + 1
	// KindTransfer moves tokens between accounts; it is the payload on
	// which double-spending has concrete semantics.
	KindTransfer
	// KindAuthorization is a manager-signed device authorization list
	// update (paper Eqn 1).
	KindAuthorization
	// KindKeyDist carries one message of the Fig-4 symmetric-key
	// distribution protocol.
	KindKeyDist
	// KindGenesis marks the two genesis transactions that bootstrap the
	// tangle.
	KindGenesis
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindTransfer:
		return "transfer"
	case KindAuthorization:
		return "authorization"
	case KindKeyDist:
		return "keydist"
	case KindGenesis:
		return "genesis"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Valid reports whether k is a known payload kind.
func (k Kind) Valid() bool { return k >= KindData && k <= KindGenesis }

// MaxPayloadSize bounds payload bytes accepted by validation. The paper
// (§VI-B) observes "a 256 kilobytes data package is large enough for IoT
// transmission"; we allow 1 MiB so the Fig-10 sweep's largest message
// still fits in a single transaction.
const MaxPayloadSize = 1 << 20

// Transaction is one vertex of the tangle DAG.
type Transaction struct {
	// Trunk and Branch are the two approved parent transactions
	// ("tips" at issue time). Genesis transactions reference Zero.
	Trunk  hashutil.Hash
	Branch hashutil.Hash

	// Issuer is the Ed25519 public key of the issuing account.
	Issuer identity.PublicKey
	// Timestamp is the issue instant claimed by the issuer.
	Timestamp time.Time

	// Kind tags the payload; Payload is the kind-specific body.
	Kind    Kind
	Payload []byte

	// Nonce is the proof-of-work solution over (Trunk, Branch, Nonce).
	Nonce uint64
	// Signature is the issuer's Ed25519 signature over SigningBytes.
	Signature []byte
}

// ID returns the transaction identity: the SHA-256 digest of the full
// canonical encoding (parents, issuer, timestamp, payload, nonce,
// signature). Any mutation changes the ID.
func (t *Transaction) ID() hashutil.Hash {
	return hashutil.Sum(t.Encode())
}

// Sender returns the issuing account's address.
func (t *Transaction) Sender() identity.Address {
	return identity.AddressOf(t.Issuer)
}

// PowDigest computes the Eqn-6 output for the transaction's parents and
// the given nonce.
func PowDigest(trunk, branch hashutil.Hash, nonce uint64) hashutil.Hash {
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	inner1 := hashutil.Sum(trunk[:])
	inner2 := hashutil.Sum(branch[:])
	return hashutil.SumConcat(inner1[:], inner2[:], nb[:])
}

// PowDigest returns the Eqn-6 output for this transaction's own nonce.
func (t *Transaction) PowDigest() hashutil.Hash {
	return PowDigest(t.Trunk, t.Branch, t.Nonce)
}

// SigningBytes returns the canonical byte string covered by the issuer's
// signature: everything except the nonce and the signature itself. The
// nonce is excluded because proof-of-work is computed after signing
// (paper Fig 6 steps 4-5: validate tips, then bundle via PoW).
func (t *Transaction) SigningBytes() []byte {
	return t.encode(false)
}

// Sign signs the transaction with key and stores the signature. The
// issuer field is set from the key; callers sign before running PoW.
func (t *Transaction) Sign(key *identity.KeyPair) {
	t.Issuer = key.Public()
	t.Signature = key.Sign(t.SigningBytes())
}

// Validation errors. They are matched by gateways to decide whether a
// submission is merely malformed or evidence of misbehaviour.
var (
	ErrNoIssuer         = errors.New("transaction has no issuer public key")
	ErrBadKind          = errors.New("transaction has unknown payload kind")
	ErrPayloadTooLarge  = errors.New("transaction payload exceeds maximum size")
	ErrMissingParents   = errors.New("non-genesis transaction must approve two parents")
	ErrSelfParent       = errors.New("transaction approves itself")
	ErrBadTxSignature   = errors.New("transaction signature invalid")
	ErrInsufficientWork = errors.New("proof of work does not meet required difficulty")
	ErrGenesisParents   = errors.New("genesis transaction must reference zero parents")
)

// VerifyBasic checks structural integrity and the issuer signature. It
// does not check proof-of-work (difficulty is per-node under the
// credit-based mechanism; see VerifyPoW) nor ledger semantics.
func (t *Transaction) VerifyBasic() error {
	if len(t.Issuer) == 0 {
		return ErrNoIssuer
	}
	if !t.Kind.Valid() {
		return ErrBadKind
	}
	if len(t.Payload) > MaxPayloadSize {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(t.Payload))
	}
	if t.Kind == KindGenesis {
		if !t.Trunk.IsZero() || !t.Branch.IsZero() {
			return ErrGenesisParents
		}
	} else {
		if t.Trunk.IsZero() || t.Branch.IsZero() {
			return ErrMissingParents
		}
	}
	if err := identity.Verify(t.Issuer, t.SigningBytes(), t.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTxSignature, err)
	}
	return nil
}

// VerifyPoW checks that the transaction's nonce satisfies the given
// difficulty (leading zero bits of the Eqn-6 output).
func (t *Transaction) VerifyPoW(difficulty int) error {
	if !t.PowDigest().MeetsDifficulty(difficulty) {
		return fmt.Errorf("%w: have %d bits, need %d",
			ErrInsufficientWork, t.PowDigest().LeadingZeroBits(), difficulty)
	}
	return nil
}

// Clone returns a deep copy of the transaction.
func (t *Transaction) Clone() *Transaction {
	cp := *t
	cp.Issuer = append(identity.PublicKey(nil), t.Issuer...)
	cp.Payload = append([]byte(nil), t.Payload...)
	cp.Signature = append([]byte(nil), t.Signature...)
	return &cp
}
