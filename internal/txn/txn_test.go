package txn

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/b-iot/biot/internal/hashutil"
	"github.com/b-iot/biot/internal/identity"
)

func mustKey(t *testing.T) *identity.KeyPair {
	t.Helper()
	k, err := identity.Generate()
	if err != nil {
		t.Fatalf("generate key: %v", err)
	}
	return k
}

func sampleTx(t *testing.T, key *identity.KeyPair) *Transaction {
	t.Helper()
	tx := &Transaction{
		Trunk:     hashutil.Sum([]byte("trunk")),
		Branch:    hashutil.Sum([]byte("branch")),
		Timestamp: time.Unix(1_700_000_000, 12345).UTC(),
		Kind:      KindData,
		Payload:   []byte("sensor=temperature;value=20.5"),
		Nonce:     77,
	}
	tx.Sign(key)
	return tx
}

func TestSignVerifyBasic(t *testing.T) {
	tx := sampleTx(t, mustKey(t))
	if err := tx.VerifyBasic(); err != nil {
		t.Errorf("VerifyBasic: %v", err)
	}
}

func TestVerifyBasicRejections(t *testing.T) {
	key := mustKey(t)
	tests := []struct {
		name   string
		mutate func(*Transaction)
	}{
		{"no issuer", func(tx *Transaction) { tx.Issuer = nil }},
		{"bad kind", func(tx *Transaction) { tx.Kind = Kind(42) }},
		{"zero trunk", func(tx *Transaction) { tx.Trunk = hashutil.Zero }},
		{"zero branch", func(tx *Transaction) { tx.Branch = hashutil.Zero }},
		{"tampered payload", func(tx *Transaction) { tx.Payload[0] ^= 1 }},
		{"tampered signature", func(tx *Transaction) { tx.Signature[0] ^= 1 }},
		{"swapped parents", func(tx *Transaction) { tx.Trunk, tx.Branch = tx.Branch, tx.Trunk }},
		{"shifted timestamp", func(tx *Transaction) { tx.Timestamp = tx.Timestamp.Add(time.Second) }},
		{"changed kind", func(tx *Transaction) { tx.Kind = KindTransfer }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tx := sampleTx(t, key)
			tt.mutate(tx)
			if err := tx.VerifyBasic(); err == nil {
				t.Error("mutated transaction verified")
			}
		})
	}
}

func TestNonceNotCoveredBySignature(t *testing.T) {
	// PoW runs after signing (Fig 6), so changing the nonce must not
	// invalidate the signature.
	tx := sampleTx(t, mustKey(t))
	tx.Nonce = 123456
	if err := tx.VerifyBasic(); err != nil {
		t.Errorf("nonce change broke the signature: %v", err)
	}
}

func TestIDCommitsToNonce(t *testing.T) {
	tx := sampleTx(t, mustKey(t))
	id1 := tx.ID()
	tx.Nonce++
	if tx.ID() == id1 {
		t.Error("ID unchanged after nonce change")
	}
}

func TestGenesisValidation(t *testing.T) {
	key := mustKey(t)
	g := &Transaction{Kind: KindGenesis, Timestamp: time.Unix(0, 0)}
	g.Sign(key)
	if err := g.VerifyBasic(); err != nil {
		t.Errorf("genesis with zero parents rejected: %v", err)
	}
	g2 := &Transaction{
		Kind:      KindGenesis,
		Trunk:     hashutil.Sum([]byte("x")),
		Timestamp: time.Unix(0, 0),
	}
	g2.Sign(key)
	if err := g2.VerifyBasic(); err == nil {
		t.Error("genesis with non-zero parent accepted")
	}
}

func TestPayloadTooLarge(t *testing.T) {
	key := mustKey(t)
	tx := sampleTx(t, key)
	tx.Payload = make([]byte, MaxPayloadSize+1)
	tx.Sign(key)
	if err := tx.VerifyBasic(); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestPowDigestMatchesEqn6Structure(t *testing.T) {
	trunk := hashutil.Sum([]byte("t"))
	branch := hashutil.Sum([]byte("b"))
	// output = hash(hash(TX1) || hash(TX2) || nonce)
	inner1 := hashutil.Sum(trunk[:])
	inner2 := hashutil.Sum(branch[:])
	nonce := uint64(0xDEADBEEF)
	nb := []byte{0, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF}
	want := hashutil.SumConcat(inner1[:], inner2[:], nb)
	if got := PowDigest(trunk, branch, nonce); got != want {
		t.Errorf("PowDigest = %v, want %v", got, want)
	}
}

func TestVerifyPoW(t *testing.T) {
	tx := sampleTx(t, mustKey(t))
	// Find a nonce with ≥ 8 leading zero bits.
	for n := uint64(0); ; n++ {
		if PowDigest(tx.Trunk, tx.Branch, n).MeetsDifficulty(8) {
			tx.Nonce = n
			break
		}
	}
	if err := tx.VerifyPoW(8); err != nil {
		t.Errorf("valid pow rejected: %v", err)
	}
	if err := tx.VerifyPoW(40); err == nil {
		t.Error("insufficient pow accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	tx := sampleTx(t, mustKey(t))
	cp := tx.Clone()
	if cp.ID() != tx.ID() {
		t.Fatal("clone has different ID")
	}
	cp.Payload[0] ^= 1
	cp.Issuer[0] ^= 1
	cp.Signature[0] ^= 1
	if err := tx.VerifyBasic(); err != nil {
		t.Error("mutating the clone corrupted the original")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	key := mustKey(t)
	kinds := []Kind{KindData, KindTransfer, KindAuthorization, KindKeyDist}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			tx := sampleTx(t, key)
			tx.Kind = kind
			tx.Sign(key)
			decoded, err := Decode(tx.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if decoded.ID() != tx.ID() {
				t.Error("round trip changed the ID")
			}
			if !decoded.Timestamp.Equal(tx.Timestamp) {
				t.Errorf("timestamp %v != %v", decoded.Timestamp, tx.Timestamp)
			}
			if err := decoded.VerifyBasic(); err != nil {
				t.Errorf("decoded tx invalid: %v", err)
			}
		})
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	key := mustKey(t)
	check := func(payload []byte, nonce uint64, kindSel uint8) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		tx := &Transaction{
			Trunk:     hashutil.Sum([]byte{1}),
			Branch:    hashutil.Sum([]byte{2}),
			Timestamp: time.Unix(int64(nonce%1e9), int64(nonce%1e9)).UTC(),
			Kind:      Kind(kindSel%4) + KindData,
			Payload:   payload,
			Nonce:     nonce,
		}
		tx.Sign(key)
		decoded, err := Decode(tx.Encode())
		return err == nil && decoded.ID() == tx.ID()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	key := mustKey(t)
	valid := sampleTx(t, key).Encode()
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{0xFF, 0xFF}, valid[2:]...)},
		{"bad version", mutateAt(valid, 2, 0x7F)},
		{"truncated header", valid[:10]},
		{"truncated payload", valid[:len(valid)-40]},
		{"trailing bytes", append(append([]byte{}, valid...), 0x00)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.data); err == nil {
				t.Error("malformed encoding decoded")
			}
		})
	}
}

func mutateAt(data []byte, idx int, val byte) []byte {
	out := append([]byte(nil), data...)
	out[idx] = val
	return out
}

func TestDecodeRejectsHugePayloadLength(t *testing.T) {
	key := mustKey(t)
	tx := sampleTx(t, key)
	raw := tx.Encode()
	// Payload length field sits after magic(2)+ver(1)+kind(1)+trunk(32)+
	// branch(32)+ts(8)+issuerLen(2)+issuer(32).
	off := 2 + 1 + 1 + 32 + 32 + 8 + 2 + len(tx.Issuer)
	raw[off] = 0xFF
	raw[off+1] = 0xFF
	raw[off+2] = 0xFF
	raw[off+3] = 0xFF
	if _, err := Decode(raw); err == nil {
		t.Error("huge payload length accepted")
	}
}

func TestSenderDerivation(t *testing.T) {
	key := mustKey(t)
	tx := sampleTx(t, key)
	if tx.Sender() != key.Address() {
		t.Error("Sender() != key address")
	}
}

func TestKindStringAndValid(t *testing.T) {
	for _, k := range []Kind{KindData, KindTransfer, KindAuthorization, KindKeyDist, KindGenesis} {
		if !k.Valid() {
			t.Errorf("%v not valid", k)
		}
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("%v has fallback string", k)
		}
	}
	if Kind(0).Valid() || Kind(6).Valid() {
		t.Error("out-of-range kind valid")
	}
	if !strings.HasPrefix(Kind(42).String(), "kind(") {
		t.Error("unknown kind missing fallback string")
	}
}

func TestSigningBytesIsEncodePrefix(t *testing.T) {
	tx := sampleTx(t, mustKey(t))
	full := tx.Encode()
	signing := tx.SigningBytes()
	if !bytes.HasPrefix(full, signing) {
		t.Error("SigningBytes is not a prefix of Encode")
	}
}
