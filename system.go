package biot

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"github.com/b-iot/biot/internal/clock"
	"github.com/b-iot/biot/internal/core"
	"github.com/b-iot/biot/internal/gossip"
	"github.com/b-iot/biot/internal/identity"
	"github.com/b-iot/biot/internal/node"
	"github.com/b-iot/biot/internal/quality"
	"github.com/b-iot/biot/internal/rpc"
	"github.com/b-iot/biot/internal/tangle"
)

// SystemConfig configures a factory deployment.
type SystemConfig struct {
	// Credit holds the consensus constants; the zero value selects the
	// paper's defaults.
	Credit CreditParams
	// Policy maps credit to difficulty; nil selects the additive
	// default.
	Policy DifficultyPolicy
	// Tangle configures the ledger; the zero value selects defaults.
	Tangle tangle.Config
	// RateLimit bounds per-device submissions per second at each full
	// node (0 disables).
	RateLimit int
	// Clock overrides the time source (virtual clocks in simulations).
	Clock clock.Clock
	// Quality, when non-nil, validates plaintext sensor readings at
	// every full node; violations are punished through the credit
	// mechanism.
	Quality *quality.Validator
	// PersistDir, when non-empty, journals each full node's ledger to
	// `<PersistDir>/<node>.log` and replays it on restart.
	PersistDir string
}

// System is a B-IoT deployment: the manager full node plus gateways,
// connected over an in-memory gossip bus. It is the entry point for
// in-process use; cmd/biot-node runs the same components over TCP.
type System struct {
	cfg        SystemConfig
	bus        *gossip.Bus
	managerKey *identity.KeyPair
	manager    *node.Manager
	gateways   []*Gateway
}

// Gateway is one full node serving devices.
type Gateway struct {
	full *node.FullNode
	rpc  *rpc.Server
}

// Node exposes the underlying full node (tip selection, credit, stats).
func (g *Gateway) Node() *node.FullNode { return g.full }

// Address returns the gateway's account address.
func (g *Gateway) Address() Address { return g.full.Address() }

// ServeRPC starts the gateway's RESTful HTTP API on addr
// (e.g. "127.0.0.1:0") and returns the bound address.
func (g *Gateway) ServeRPC(addr string) (string, error) {
	if g.rpc != nil {
		return "", errors.New("rpc already serving")
	}
	srv := rpc.NewServer(g.full)
	if err := srv.Start(addr); err != nil {
		return "", err
	}
	g.rpc = srv
	return srv.Addr(), nil
}

// Close stops the gateway's RPC server, if any.
func (g *Gateway) Close() error {
	if g.rpc == nil {
		return nil
	}
	err := g.rpc.Close()
	g.rpc = nil
	return err
}

// NewSystem boots a deployment: it generates the manager account, pins
// its key in the genesis configuration, and starts the manager full
// node.
func NewSystem(cfg SystemConfig) (*System, error) {
	managerKey, err := identity.Generate()
	if err != nil {
		return nil, fmt.Errorf("generate manager account: %w", err)
	}
	return NewSystemWithKey(cfg, managerKey)
}

// NewSystemWithKey boots a deployment under an existing manager
// account.
func NewSystemWithKey(cfg SystemConfig, managerKey *identity.KeyPair) (*System, error) {
	if managerKey == nil {
		return nil, errors.New("system requires a manager key")
	}
	bus := gossip.NewBus()
	mgrNet, err := bus.Join("manager")
	if err != nil {
		return nil, err
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        managerKey,
		Role:       identity.RoleManager,
		ManagerPub: managerKey.Public(),
		Credit:     cfg.Credit,
		Policy:     cfg.Policy,
		Tangle:     cfg.Tangle,
		Clock:      cfg.Clock,
		Network:    mgrNet,
		RateLimit:  cfg.RateLimit,
		RateWindow: time.Second,
		Quality:    cfg.Quality,
	})
	if err != nil {
		return nil, err
	}
	if cfg.PersistDir != "" {
		if _, err := full.EnablePersistence(filepath.Join(cfg.PersistDir, "manager.log")); err != nil {
			return nil, err
		}
	}
	mgr, err := node.NewManager(full)
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:        cfg,
		bus:        bus,
		managerKey: managerKey,
		manager:    mgr,
	}, nil
}

// ManagerPublic returns the manager's public signing key (what devices
// pin to trust key-distribution messages).
func (s *System) ManagerPublic() identity.PublicKey { return s.managerKey.Public() }

// Manager exposes the management tooling.
func (s *System) Manager() *node.Manager { return s.manager }

// ManagerGateway returns the manager's own full node as a gateway
// (single-node deployments submit through it).
func (s *System) ManagerGateway() *Gateway {
	return &Gateway{full: s.manager.Node()}
}

// AddGateway starts a new gateway full node, registers it with the
// manager, and syncs it to the current ledger.
func (s *System) AddGateway(ctx context.Context) (*Gateway, error) {
	gwKey, err := identity.Generate()
	if err != nil {
		return nil, fmt.Errorf("generate gateway account: %w", err)
	}
	gwNet, err := s.bus.Join(fmt.Sprintf("gateway-%d", len(s.gateways)))
	if err != nil {
		return nil, err
	}
	full, err := node.NewFull(node.FullConfig{
		Key:        gwKey,
		Role:       identity.RoleGateway,
		ManagerPub: s.managerKey.Public(),
		Credit:     s.cfg.Credit,
		Policy:     s.cfg.Policy,
		Tangle:     s.cfg.Tangle,
		Clock:      s.cfg.Clock,
		Network:    gwNet,
		RateLimit:  s.cfg.RateLimit,
		RateWindow: time.Second,
		Quality:    s.cfg.Quality,
	})
	if err != nil {
		return nil, err
	}
	if s.cfg.PersistDir != "" {
		name := fmt.Sprintf("gateway-%d.log", len(s.gateways))
		if _, err := full.EnablePersistence(filepath.Join(s.cfg.PersistDir, name)); err != nil {
			return nil, err
		}
	}
	s.manager.RegisterGateway(gwKey.Public())
	full.SyncAll(ctx)
	gw := &Gateway{full: full}
	s.gateways = append(s.gateways, gw)
	return gw, nil
}

// Gateways returns the started gateways (not including the manager).
func (s *System) Gateways() []*Gateway {
	out := make([]*Gateway, len(s.gateways))
	copy(out, s.gateways)
	return out
}

// AuthorizeDevice stages a device account for the next authorization
// list. Call PublishAuthorization to make it effective.
func (s *System) AuthorizeDevice(key *KeyPair) {
	s.manager.AuthorizeDevice(key.Public(), key.BoxPublic())
}

// DeauthorizeDevice removes a device account from the next list.
func (s *System) DeauthorizeDevice(key *KeyPair) {
	s.manager.DeauthorizeDevice(key.Public())
}

// PublishAuthorization posts the staged authorization list (Eqn 1).
func (s *System) PublishAuthorization(ctx context.Context) error {
	_, err := s.manager.PublishAuthorization(ctx)
	return err
}

// DistributeKey runs the full Fig-4 exchange with the device through
// the tangle and returns once both sides hold the symmetric key.
func (s *System) DistributeKey(ctx context.Context, dev *Device) error {
	if _, err := s.manager.StartKeyDistribution(ctx, dev.Address()); err != nil {
		return err
	}
	return s.driveExchange(ctx, dev)
}

// ShareKey re-issues the key already distributed to owner to recipient
// through its own Fig-4 exchange — the §IV-A4 cross-factory sharing
// flow: the group key never travels out of band.
func (s *System) ShareKey(ctx context.Context, owner, recipient *Device) error {
	if _, err := s.manager.ShareKey(ctx, owner.Address(), recipient.Address()); err != nil {
		return err
	}
	return s.driveExchange(ctx, recipient)
}

// RotateKey revokes the device's issued key and distributes a fresh one.
func (s *System) RotateKey(ctx context.Context, dev *Device) error {
	if _, err := s.manager.RotateKey(ctx, dev.Address()); err != nil {
		return err
	}
	return s.driveExchange(ctx, dev)
}

// driveExchange pumps both protocol sides until the device completes.
func (s *System) driveExchange(ctx context.Context, dev *Device) error {
	done := make(chan error, 1)
	go func() {
		done <- dev.light.RunKeyDistribution(ctx, s.managerKey.Public(), 5*time.Millisecond)
	}()
	for {
		select {
		case err := <-done:
			return err
		case <-ctx.Done():
			return ctx.Err()
		default:
			if _, err := s.manager.PumpKeyDistribution(ctx); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// IssuedKey returns the symmetric key distributed to the device, once
// the exchange completed.
func (s *System) IssuedKey(dev *Device) (DataKey, bool) {
	return s.manager.IssuedKey(dev.Address())
}

// Mint endows an account with tokens on the manager's settled ledger
// (the genesis allocation of the transfer experiments).
func (s *System) Mint(addr Address, amount uint64) {
	s.manager.Node().Tokens().Mint(addr, amount)
}

// CreditOf evaluates a node's current credit at the manager.
func (s *System) CreditOf(addr Address) Credit {
	n := s.manager.Node()
	return n.Engine().CreditOf(addr, n.Clock().Now())
}

// DifficultyFor returns the PoW difficulty currently demanded of addr.
func (s *System) DifficultyFor(addr Address) int {
	return s.manager.Node().DifficultyFor(addr)
}

// Stats returns the manager's ledger statistics.
func (s *System) Stats() tangle.Stats {
	return s.manager.Node().Tangle().StatsNow()
}

// Flush blocks until every node's asynchronous broadcast queue has
// drained — the barrier to call before reading one device's submission
// through a *different* gateway. Single-gateway flows never need it.
func (s *System) Flush(ctx context.Context) error {
	if err := s.manager.Node().FlushBroadcast(ctx); err != nil {
		return err
	}
	for _, gw := range s.gateways {
		if err := gw.full.FlushBroadcast(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Events returns the recorded malicious events for addr.
func (s *System) Events(addr Address) []core.EventRecord {
	return s.manager.Node().Engine().Ledger().Events(addr)
}

// Close shuts the deployment down: broadcast pipelines drain and stop,
// then RPC servers, journals and the bus close.
func (s *System) Close() error {
	var firstErr error
	for _, gw := range s.gateways {
		if err := gw.full.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := gw.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if s.cfg.PersistDir != "" {
			if err := gw.full.ClosePersistence(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := s.manager.Node().Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if s.cfg.PersistDir != "" {
		if err := s.manager.Node().ClosePersistence(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.bus.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
