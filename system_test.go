package biot_test

import (
	"context"
	"testing"
	"time"

	biot "github.com/b-iot/biot"
)

// fastParams keeps PoW trivial in tests.
func fastParams() biot.CreditParams {
	p := biot.DefaultCreditParams()
	p.InitialDifficulty = 4
	p.MinDifficulty = 1
	p.MaxDifficulty = 20
	return p
}

func TestSystemQuickstartFlow(t *testing.T) {
	ctx := context.Background()
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: fastParams()})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	defer func() {
		if err := sys.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	dev, err := sys.NewDevice(biot.DeviceConfig{}, nil)
	if err != nil {
		t.Fatalf("new device: %v", err)
	}
	sys.AuthorizeDevice(dev.Key())
	if err := sys.PublishAuthorization(ctx); err != nil {
		t.Fatalf("publish authorization: %v", err)
	}

	info, err := dev.PostReading(ctx, []byte("temp=20.1"))
	if err != nil {
		t.Fatalf("post reading: %v", err)
	}
	body, err := dev.FetchReading(info.ID, nil)
	if err != nil {
		t.Fatalf("fetch reading: %v", err)
	}
	if string(body) != "temp=20.1" {
		t.Errorf("reading = %q, want %q", body, "temp=20.1")
	}
}

func TestSystemEncryptedFlowAndGatewayRPC(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sys, err := biot.NewSystem(biot.SystemConfig{Credit: fastParams()})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	defer sys.Close()

	gw, err := sys.AddGateway(ctx)
	if err != nil {
		t.Fatalf("add gateway: %v", err)
	}
	addr, err := gw.ServeRPC("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve rpc: %v", err)
	}

	// The device connects over HTTP, exactly as a separate process
	// would.
	key, err := biot.NewKeyPair()
	if err != nil {
		t.Fatalf("device key: %v", err)
	}
	dev, err := biot.ConnectDevice(biot.DeviceConfig{Key: key}, "http://"+addr)
	if err != nil {
		t.Fatalf("connect device: %v", err)
	}
	sys.AuthorizeDevice(key)
	if err := sys.PublishAuthorization(ctx); err != nil {
		t.Fatalf("publish authorization: %v", err)
	}

	// In-process twin of the same account completes key distribution
	// (distribution needs the device account, not the transport).
	devLocal, err := sys.NewDevice(biot.DeviceConfig{Key: key}, nil)
	if err != nil {
		t.Fatalf("local device: %v", err)
	}
	if err := sys.DistributeKey(ctx, devLocal); err != nil {
		t.Fatalf("distribute key: %v", err)
	}
	if !devLocal.HasDataKey() {
		t.Fatal("device missing data key")
	}

	// Encrypted posting via the local twin; retrieval over RPC.
	info, err := devLocal.PostReading(ctx, []byte("secret=42"))
	if err != nil {
		t.Fatalf("post encrypted: %v", err)
	}
	if _, err := dev.FetchReading(info.ID, nil); err == nil {
		t.Fatal("sensitive reading opened without key over rpc")
	}
	issued, ok := sys.IssuedKey(devLocal)
	if !ok {
		t.Fatal("no issued key")
	}
	body, err := dev.FetchReading(info.ID, &issued)
	if err != nil {
		t.Fatalf("fetch encrypted over rpc: %v", err)
	}
	if string(body) != "secret=42" {
		t.Errorf("reading = %q, want %q", body, "secret=42")
	}
}
